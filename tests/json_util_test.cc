// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the minimal JSON parser / writer helpers (util/json.h) that
// back the observability outputs.

#include "util/json.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace monoclass {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_TRUE(JsonValue::Parse("true")->AsBool());
  EXPECT_FALSE(JsonValue::Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("3.25")->AsNumber(), 3.25);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-17")->AsNumber(), -17.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1e3")->AsNumber(), 1000.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(JsonValue::Parse(R"("a\"b\\c\/d\n\t")")->AsString(),
            "a\"b\\c/d\n\t");
  // \u0041 = 'A'; \u00e9 = e-acute in UTF-8.
  EXPECT_EQ(JsonValue::Parse(R"("\u0041")")->AsString(), "A");
  EXPECT_EQ(JsonValue::Parse(R"("\u00e9")")->AsString(), "\xc3\xa9");
}

TEST(JsonParseTest, ArraysAndObjects) {
  const auto doc = JsonValue::Parse(R"({"a": [1, 2, 3], "b": {"c": true}})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(a->AsArray()[1].AsNumber(), 2.0);
  const JsonValue* b = doc->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(b->Find("c"), nullptr);
  EXPECT_TRUE(b->Find("c")->AsBool());
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonParseTest, MalformedInputsRejectedWithError) {
  for (const char* bad :
       {"", "{", "[1,", "\"unterminated", "{\"a\":}", "tru", "1 2",
        "{\"a\" 1}", "[1 2]", "\"\\x\"", "nan"}) {
    std::string error;
    EXPECT_FALSE(JsonValue::Parse(bad, &error).has_value())
        << "input: " << bad;
    EXPECT_FALSE(error.empty()) << "input: " << bad;
  }
}

TEST(JsonParseTest, TrailingGarbageRejected) {
  EXPECT_FALSE(JsonValue::Parse("{} extra").has_value());
  EXPECT_TRUE(JsonValue::Parse("{}  \n\t ").has_value());
}

TEST(JsonParseTest, NestedRoundTrip) {
  const std::string text =
      R"({"phases":[{"name":"a","wall_ms":1.5},{"name":"b","wall_ms":0}]})";
  const auto doc = JsonValue::Parse(text);
  ASSERT_TRUE(doc.has_value());
  const auto& phases = doc->Find("phases")->AsArray();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].Find("name")->AsString(), "a");
  EXPECT_DOUBLE_EQ(phases[1].Find("wall_ms")->AsNumber(), 0.0);
}

TEST(JsonEscapeTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonEscapeTest, EscapedStringsParseBack) {
  const std::string nasty = "quote\" slash\\ newline\n tab\t bell\x07 done";
  const std::string doc = "\"" + JsonEscape(nasty) + "\"";
  const auto parsed = JsonValue::Parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AsString(), nasty);
}

TEST(JsonNumberTest, FiniteAndNonFinite) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_DOUBLE_EQ(JsonValue::Parse(JsonNumber(1.0 / 3.0))->AsNumber(),
                   1.0 / 3.0);
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
}

TEST(JsonValueTest, MakeConstructors) {
  const JsonValue value = JsonValue::MakeObject(
      {{"n", JsonValue::MakeNumber(4.0)},
       {"tags", JsonValue::MakeArray({JsonValue::MakeString("x")})}});
  EXPECT_DOUBLE_EQ(value.Find("n")->AsNumber(), 4.0);
  EXPECT_EQ(value.Find("tags")->AsArray()[0].AsString(), "x");
}

}  // namespace
}  // namespace monoclass
