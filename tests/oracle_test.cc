// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.

#include "active/oracle.h"

#include <gtest/gtest.h>

namespace monoclass {
namespace {

LabeledPointSet MakeSet() {
  LabeledPointSet set;
  set.Add(Point{1}, 1);
  set.Add(Point{2}, 0);
  set.Add(Point{3}, 1);
  return set;
}

TEST(InMemoryOracleTest, RevealsTrueLabels) {
  const LabeledPointSet set = MakeSet();
  InMemoryOracle oracle(set);
  EXPECT_EQ(oracle.Probe(0), 1);
  EXPECT_EQ(oracle.Probe(1), 0);
  EXPECT_EQ(oracle.Probe(2), 1);
}

TEST(InMemoryOracleTest, CountsDistinctProbes) {
  const LabeledPointSet set = MakeSet();
  InMemoryOracle oracle(set);
  EXPECT_EQ(oracle.NumProbes(), 0u);
  oracle.Probe(0);
  oracle.Probe(0);
  oracle.Probe(0);
  oracle.Probe(2);
  EXPECT_EQ(oracle.NumProbes(), 2u);
  EXPECT_EQ(oracle.NumProbeCalls(), 4u);
}

TEST(InMemoryOracleTest, TracksProbedSet) {
  const LabeledPointSet set = MakeSet();
  InMemoryOracle oracle(set);
  oracle.Probe(1);
  EXPECT_TRUE(oracle.WasProbed(1));
  EXPECT_FALSE(oracle.WasProbed(0));
  EXPECT_FALSE(oracle.WasProbed(2));
}

TEST(InMemoryOracleTest, ResetForgetsEverything) {
  const LabeledPointSet set = MakeSet();
  InMemoryOracle oracle(set);
  oracle.Probe(0);
  oracle.Reset();
  EXPECT_EQ(oracle.NumProbes(), 0u);
  EXPECT_EQ(oracle.NumProbeCalls(), 0u);
  EXPECT_FALSE(oracle.WasProbed(0));
}

TEST(InMemoryOracleTest, NumPointsMatchesSet) {
  const LabeledPointSet set = MakeSet();
  InMemoryOracle oracle(set);
  EXPECT_EQ(oracle.NumPoints(), 3u);
}

TEST(InMemoryOracleTest, OutOfRangeProbeAborts) {
  const LabeledPointSet set = MakeSet();
  InMemoryOracle oracle(set);
  EXPECT_DEATH(oracle.Probe(3), "");
}

TEST(NoisyOracleTest, ZeroNoiseIsTruthful) {
  const LabeledPointSet set = MakeSet();
  NoisyOracle oracle(set, 0.0, 1);
  for (size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(oracle.Probe(i), set.label(i));
  }
  EXPECT_EQ(oracle.NumLies(), 0u);
}

TEST(NoisyOracleTest, FullNoiseAlwaysLies) {
  const LabeledPointSet set = MakeSet();
  NoisyOracle oracle(set, 1.0, 1);
  for (size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(oracle.Probe(i), 1 - set.label(i));
  }
  EXPECT_EQ(oracle.NumLies(), set.size());
}

TEST(NoisyOracleTest, AnswersArePersistent) {
  // A repeated probe must return the same (possibly flipped) answer.
  LabeledPointSet set;
  for (int i = 0; i < 200; ++i) set.Add(Point{static_cast<double>(i)}, 1);
  NoisyOracle oracle(set, 0.5, 7);
  std::vector<Label> first(200);
  for (size_t i = 0; i < 200; ++i) first[i] = oracle.Probe(i);
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(oracle.Probe(i), first[i]) << i;
  }
  EXPECT_EQ(oracle.NumProbes(), 200u);
  EXPECT_EQ(oracle.NumProbeCalls(), 400u);
}

TEST(NoisyOracleTest, LieRateMatchesProbability) {
  LabeledPointSet set;
  for (int i = 0; i < 5000; ++i) set.Add(Point{static_cast<double>(i)}, 0);
  NoisyOracle oracle(set, 0.2, 13);
  for (size_t i = 0; i < 5000; ++i) oracle.Probe(i);
  EXPECT_NEAR(static_cast<double>(oracle.NumLies()) / 5000.0, 0.2, 0.03);
}

TEST(NoisyOracleTest, DeterministicUnderSeed) {
  const LabeledPointSet set = MakeSet();
  NoisyOracle a(set, 0.5, 99);
  NoisyOracle b(set, 0.5, 99);
  for (size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(a.Probe(i), b.Probe(i));
  }
}

}  // namespace
}  // namespace monoclass
