// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Negative tests for the invariant-audit layer: deliberately corrupt a
// solved flow, a minimum cut, a chain decomposition and the incremental
// solver's repaired state, and assert the corresponding audit REJECTS
// the corruption. The positive direction (audits pass on honest
// solutions) is exercised everywhere else; these tests are what makes a
// green audit meaningful evidence.
//
// Also pins the fuzz scenario codec: DecodeIncrementalScenario and
// EncodeIncrementalScenario must be exact inverses on the decoder's
// grids, because audit_fuzz crash artifacts are replayed byte-for-byte
// by the fuzz_incremental harness.

#include <cstdint>
#include <vector>

#include "fuzz/fuzz_util.h"
#include "gtest/gtest.h"
#include "monoclass.h"

namespace monoclass {

// Private-state access for the corruption tests (friend of
// IncrementalPassiveSolver).
struct IncrementalSolverTestPeer {
  static FlowNetwork& network(IncrementalPassiveSolver& solver) {
    return solver.network_;
  }
  static double& flow_value(IncrementalPassiveSolver& solver) {
    return solver.flow_value_;
  }
};

namespace {

// ---------------------------------------------------------------------
// AuditMinCut / AuditFlowConservation.

// A small network with max flow 4: 0->1 (3), 0->2 (2), 1->3 (2), 2->3 (3).
FlowNetwork SolvedDiamond(double* flow_out) {
  FlowNetwork network(4);
  network.AddEdge(0, 1, 3.0);
  network.AddEdge(0, 2, 2.0);
  network.AddEdge(1, 3, 2.0);
  network.AddEdge(2, 3, 3.0);
  const auto solver = CreateMaxFlowSolver(MaxFlowAlgorithm::kDinic);
  *flow_out = solver->Solve(network, 0, 3);
  return network;
}

TEST(AuditMinCutFailure, HonestSolveAudits) {
  double flow = 0.0;
  FlowNetwork network = SolvedDiamond(&flow);
  EXPECT_DOUBLE_EQ(flow, 4.0);
  EXPECT_TRUE(AuditFlowConservation(network, 0, 3, flow).ok);
  EXPECT_TRUE(AuditMinCut(network, 0, 3, flow).ok);
}

TEST(AuditMinCutFailure, FiresOnWrongFlowValue) {
  double flow = 0.0;
  FlowNetwork network = SolvedDiamond(&flow);
  const AuditResult result = AuditMinCut(network, 0, 3, flow + 1.0);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.failure.empty());
}

TEST(AuditMinCutFailure, FiresOnCorruptedEdgeFlow) {
  double flow = 0.0;
  FlowNetwork network = SolvedDiamond(&flow);
  // Push the first source edge's flow above its capacity.
  network.adjacency(0)[0].residual =
      network.adjacency(0)[0].capacity + 1.0;
  EXPECT_FALSE(AuditFlowConservation(network, 0, 3, flow).ok);
  EXPECT_FALSE(AuditMinCut(network, 0, 3, flow).ok);
}

TEST(AuditMinCutFailure, FiresOnNonMaximumFlow) {
  double flow = 0.0;
  FlowNetwork network = SolvedDiamond(&flow);
  // Zero flow conserves trivially, but the sink is residual-reachable,
  // so the cut audit must reject it (Lemma 7).
  network.ResetFlow();
  EXPECT_TRUE(AuditFlowConservation(network, 0, 3, 0.0).ok);
  EXPECT_FALSE(AuditMinCut(network, 0, 3, 0.0).ok);
}

TEST(AuditMinCutFailure, FiresOnInfiniteCutEdge) {
  // One saturated "infinite" edge: with infinity_threshold below its
  // capacity, the Lemma 18 check must reject the cut.
  FlowNetwork network(2);
  network.AddEdge(0, 1, 50.0);
  const auto solver = CreateMaxFlowSolver(MaxFlowAlgorithm::kDinic);
  const double flow = solver->Solve(network, 0, 1);
  FlowAuditOptions options;
  EXPECT_TRUE(AuditMinCut(network, 0, 1, flow, options).ok);
  options.infinity_threshold = 10.0;
  EXPECT_FALSE(AuditMinCut(network, 0, 1, flow, options).ok);
}

// ---------------------------------------------------------------------
// AuditChainDecomposition.

PointSet StaircasePoints() {
  PointSet points;
  points.Add(Point({0.0, 1.0}));
  points.Add(Point({1.0, 0.0}));
  points.Add(Point({1.0, 1.0}));
  points.Add(Point({2.0, 2.0}));
  return points;
}

TEST(AuditChainFailure, HonestDecompositionAudits) {
  const PointSet points = StaircasePoints();
  const ChainDecomposition decomposition = MinimumChainDecomposition(points);
  EXPECT_TRUE(
      AuditChainDecomposition(points, decomposition, /*expect_minimum=*/true)
          .ok);
}

TEST(AuditChainFailure, FiresOnIncomparablePointsInOneChain) {
  const PointSet points = StaircasePoints();
  // Points 0 = (0,1) and 1 = (1,0) are incomparable: a chain holding
  // both violates the dominance-order requirement.
  ChainDecomposition corrupt;
  corrupt.chains = {{0, 1}, {2, 3}};
  const AuditResult result =
      AuditChainDecomposition(points, corrupt, /*expect_minimum=*/false);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.failure.empty());
}

TEST(AuditChainFailure, FiresOnDroppedPoint) {
  const PointSet points = StaircasePoints();
  ChainDecomposition corrupt = MinimumChainDecomposition(points);
  corrupt.chains.back().pop_back();  // a point now appears in no chain
  EXPECT_FALSE(
      AuditChainDecomposition(points, corrupt, /*expect_minimum=*/false).ok);
}

TEST(AuditChainFailure, FiresOnDuplicatedPoint) {
  const PointSet points = StaircasePoints();
  ChainDecomposition corrupt = MinimumChainDecomposition(points);
  corrupt.chains.push_back({3});  // point 3 now covered twice
  EXPECT_FALSE(
      AuditChainDecomposition(points, corrupt, /*expect_minimum=*/false).ok);
}

TEST(AuditChainFailure, FiresOnNonMinimumClaim) {
  const PointSet points = StaircasePoints();
  // Width is 2 ((0,1) vs (1,0)); four singleton chains are a valid
  // decomposition but not a minimum one.
  ChainDecomposition corrupt;
  corrupt.chains = {{0}, {1}, {2}, {3}};
  EXPECT_TRUE(
      AuditChainDecomposition(points, corrupt, /*expect_minimum=*/false).ok);
  EXPECT_FALSE(
      AuditChainDecomposition(points, corrupt, /*expect_minimum=*/true).ok);
}

// ---------------------------------------------------------------------
// AuditIncrementalCut.

// Two conflicting 1D points (the label-1 point is dominated by the
// label-0 point), so the repaired network carries positive flow.
IncrementalPassiveSolver ConflictedSolver() {
  IncrementalPassiveSolver solver;
  solver.Insert(Point({0.25}), 1, 1.0);
  solver.Insert(Point({0.75}), 0, 2.0);
  solver.Insert(Point({1.25}), 1, 1.5);
  return solver;
}

TEST(AuditIncrementalFailure, HonestRepairAudits) {
  IncrementalPassiveSolver solver = ConflictedSolver();
  EXPECT_GT(solver.FlowValue(), 0.0);
  EXPECT_TRUE(solver.AuditIncrementalCut().ok);
}

TEST(AuditIncrementalFailure, FiresOnCorruptedFlowValue) {
  IncrementalPassiveSolver solver = ConflictedSolver();
  solver.Solve();  // cache the honest result before corrupting
  IncrementalSolverTestPeer::flow_value(solver) += 0.5;
  const AuditResult result = solver.AuditIncrementalCut();
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.failure.empty());
}

TEST(AuditIncrementalFailure, FiresOnCorruptedNetworkResidual) {
  IncrementalPassiveSolver solver = ConflictedSolver();
  solver.Solve();
  // Overfill the first edge out of the source (vertex 0): flow above
  // capacity breaks conservation inside the cut audit.
  FlowNetwork& network = IncrementalSolverTestPeer::network(solver);
  ASSERT_FALSE(network.adjacency(0).empty());
  network.adjacency(0)[0].residual =
      network.adjacency(0)[0].capacity + 1.0;
  EXPECT_FALSE(solver.AuditIncrementalCut().ok);
}

// ---------------------------------------------------------------------
// Scenario codec roundtrip (audit_fuzz artifact <-> fuzz_incremental).

TEST(ScenarioCodec, RoundTripsThroughEncode) {
  // Arbitrary bytes -> scenario -> bytes -> scenario must be a semantic
  // fixpoint after one decode (the decoder quantizes onto its grids).
  std::vector<uint8_t> bytes;
  for (int i = 0; i < 96; ++i) {
    bytes.push_back(static_cast<uint8_t>(31 * i + 7));
  }
  fuzz::FuzzInput in(bytes.data(), bytes.size());
  const fuzz::IncrementalScenario first = fuzz::DecodeIncrementalScenario(in);

  const std::vector<uint8_t> encoded = fuzz::EncodeIncrementalScenario(first);
  fuzz::FuzzInput in2(encoded.data(), encoded.size());
  const fuzz::IncrementalScenario second =
      fuzz::DecodeIncrementalScenario(in2);

  EXPECT_EQ(first.threads, second.threads);
  EXPECT_EQ(first.dimension, second.dimension);
  ASSERT_EQ(first.initial.size(), second.initial.size());
  for (size_t i = 0; i < first.initial.size(); ++i) {
    EXPECT_EQ(first.initial[i].coords, second.initial[i].coords);
    EXPECT_EQ(first.initial[i].label, second.initial[i].label);
    EXPECT_DOUBLE_EQ(first.initial[i].weight, second.initial[i].weight);
  }
  ASSERT_EQ(first.deltas.size(), second.deltas.size());
  for (size_t i = 0; i < first.deltas.size(); ++i) {
    EXPECT_EQ(first.deltas[i].kind, second.deltas[i].kind);
    EXPECT_EQ(first.deltas[i].coords, second.deltas[i].coords);
    EXPECT_EQ(first.deltas[i].label, second.deltas[i].label);
    EXPECT_DOUBLE_EQ(first.deltas[i].weight, second.deltas[i].weight);
    EXPECT_EQ(first.deltas[i].rank, second.deltas[i].rank);
  }
}

TEST(ScenarioCodec, ReplayAcceptsHonestStreams) {
  // The differential replay itself must accept a small honest stream
  // (it is the oracle both fuzz_incremental and audit_fuzz trust).
  fuzz::IncrementalScenario scenario;
  scenario.threads = 2;
  scenario.dimension = 1;
  scenario.initial.push_back({.coords = {0.25}, .label = 1, .weight = 1.0});
  scenario.initial.push_back({.coords = {0.75}, .label = 0, .weight = 2.0});
  fuzz::ScenarioDelta insert;
  insert.kind = 0;
  insert.coords = {0.5};
  insert.label = 1;
  insert.weight = 0.5;
  scenario.deltas.push_back(insert);
  fuzz::ScenarioDelta erase;
  erase.kind = 1;
  erase.rank = 1;
  scenario.deltas.push_back(erase);
  EXPECT_EQ(fuzz::ReplayIncrementalScenario(scenario), "");
}

}  // namespace
}  // namespace monoclass
