// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.

#include "data/synthetic.h"

#include <gtest/gtest.h>

#include "core/antichain.h"
#include "passive/flow_solver.h"

namespace monoclass {
namespace {

TEST(GeneratePlantedTest, SizesAndDimensions) {
  PlantedOptions options;
  options.num_points = 200;
  options.dimension = 3;
  options.noise_flips = 20;
  const PlantedInstance instance = GeneratePlanted(options);
  EXPECT_EQ(instance.data.size(), 200u);
  EXPECT_EQ(instance.data.dimension(), 3u);
  EXPECT_EQ(instance.flipped.size(), 20u);
}

TEST(GeneratePlantedTest, ZeroNoiseIsMonotone) {
  PlantedOptions options;
  options.num_points = 150;
  options.dimension = 2;
  options.noise_flips = 0;
  const PlantedInstance instance = GeneratePlanted(options);
  EXPECT_TRUE(
      IsMonotoneAssignment(instance.data.points(), instance.data.labels()));
  EXPECT_EQ(OptimalError(instance.data), 0u);
}

TEST(GeneratePlantedTest, NoiseBoundsOptimalError) {
  PlantedOptions options;
  options.num_points = 120;
  options.dimension = 2;
  options.noise_flips = 15;
  const PlantedInstance instance = GeneratePlanted(options);
  // Flipping k labels can raise k* to at most k.
  EXPECT_LE(OptimalError(instance.data), 15u);
}

TEST(GeneratePlantedTest, FlippedIndicesDisagreeWithPlanted) {
  PlantedOptions options;
  options.num_points = 100;
  options.noise_flips = 10;
  const PlantedInstance instance = GeneratePlanted(options);
  for (const size_t i : instance.flipped) {
    const Label planted_label =
        instance.planted.Classify(instance.data.point(i)) ? 1 : 0;
    EXPECT_NE(instance.data.label(i), planted_label);
  }
}

TEST(GeneratePlantedTest, DeterministicUnderSeed) {
  PlantedOptions options;
  options.num_points = 50;
  options.seed = 77;
  const PlantedInstance a = GeneratePlanted(options);
  const PlantedInstance b = GeneratePlanted(options);
  EXPECT_EQ(a.data.labels(), b.data.labels());
  EXPECT_EQ(a.data.points().points(), b.data.points().points());
}

TEST(GenerateChainInstanceTest, WidthIsExactlyNumChains) {
  for (const size_t w : {1u, 3u, 7u}) {
    ChainInstanceOptions options;
    options.num_chains = w;
    options.chain_length = 15;
    options.seed = w;
    const ChainInstance instance = GenerateChainInstance(options);
    EXPECT_EQ(instance.data.size(), w * 15u);
    EXPECT_EQ(DominanceWidth(instance.data.points()), w);
  }
}

TEST(GenerateChainInstanceTest, ReturnedDecompositionIsValid) {
  ChainInstanceOptions options;
  options.num_chains = 5;
  options.chain_length = 20;
  options.noise_per_chain = 3;
  const ChainInstance instance = GenerateChainInstance(options);
  EXPECT_TRUE(
      ValidateChainDecomposition(instance.data.points(), instance.chains));
  EXPECT_EQ(instance.chains.NumChains(), 5u);
}

TEST(GenerateChainInstanceTest, NoiseIsCountedExactly) {
  ChainInstanceOptions options;
  options.num_chains = 4;
  options.chain_length = 25;
  options.noise_per_chain = 5;
  const ChainInstance instance = GenerateChainInstance(options);
  EXPECT_EQ(instance.total_flips, 20u);
  EXPECT_LE(OptimalError(instance.data), 20u);
}

TEST(GenerateChainInstanceTest, ZeroNoiseHasZeroOptimum) {
  ChainInstanceOptions options;
  options.num_chains = 6;
  options.chain_length = 30;
  options.noise_per_chain = 0;
  const ChainInstance instance = GenerateChainInstance(options);
  EXPECT_EQ(OptimalError(instance.data), 0u);
}

TEST(GenerateChainInstanceTest, HigherDimensionsKeepWidth) {
  ChainInstanceOptions options;
  options.num_chains = 4;
  options.chain_length = 12;
  options.dimension = 5;
  const ChainInstance instance = GenerateChainInstance(options);
  EXPECT_EQ(instance.data.dimension(), 5u);
  EXPECT_EQ(DominanceWidth(instance.data.points()), 4u);
}

TEST(GenerateChainInstanceTest, BoundaryNoiseStaysNearThreshold) {
  ChainInstanceOptions options;
  options.num_chains = 3;
  options.chain_length = 200;
  options.noise_per_chain = 10;
  options.noise_mode = NoiseMode::kBoundary;
  options.seed = 23;
  const ChainInstance instance = GenerateChainInstance(options);
  EXPECT_EQ(instance.total_flips, 30u);
  // Every flipped rank must lie within the 4x-noise window of its chain's
  // planted threshold.
  const size_t window = 4 * options.noise_per_chain;
  for (size_t c = 0; c < 3; ++c) {
    for (size_t r = 0; r < options.chain_length; ++r) {
      const size_t index = instance.chains.chains[c][r];
      const Label expected = r >= instance.thresholds[c] ? 1 : 0;
      if (instance.data.label(index) != expected) {
        const size_t threshold = instance.thresholds[c];
        const size_t distance =
            r > threshold ? r - threshold : threshold - r;
        EXPECT_LE(distance, window)
            << "flip at rank " << r << " too far from threshold "
            << threshold;
      }
    }
  }
}

TEST(GenerateChainInstanceTest, BoundaryNoiseHandlesEdgeThresholds) {
  // Thresholds near 0 or m must not underflow the window computation.
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    ChainInstanceOptions options;
    options.num_chains = 2;
    options.chain_length = 20;
    options.noise_per_chain = 8;  // window 32 > m: clamps to whole chain
    options.noise_mode = NoiseMode::kBoundary;
    options.seed = seed;
    const ChainInstance instance = GenerateChainInstance(options);
    EXPECT_EQ(instance.total_flips, 16u);
    EXPECT_EQ(instance.data.size(), 40u);
  }
}

TEST(GenerateChainInstanceTest, ThresholdLabelsBeforeNoise) {
  ChainInstanceOptions options;
  options.num_chains = 3;
  options.chain_length = 40;
  options.noise_per_chain = 0;
  options.seed = 21;
  const ChainInstance instance = GenerateChainInstance(options);
  for (size_t c = 0; c < 3; ++c) {
    for (size_t r = 0; r < 40; ++r) {
      const size_t index = instance.chains.chains[c][r];
      EXPECT_EQ(instance.data.label(index),
                r >= instance.thresholds[c] ? 1 : 0);
    }
  }
}

TEST(SplitTrainTestTest, PartitionsEveryPoint) {
  PlantedOptions options;
  options.num_points = 500;
  options.seed = 31;
  const PlantedInstance instance = GeneratePlanted(options);
  const TrainTestSplit split = SplitTrainTest(instance.data, 0.3, 7);
  EXPECT_EQ(split.train.size() + split.test.size(), 500u);
  // Roughly the requested fraction (binomial, 500 draws).
  EXPECT_NEAR(static_cast<double>(split.train.size()) / 500.0, 0.3, 0.08);
}

TEST(SplitTrainTestTest, ExtremesAndDeterminism) {
  PlantedOptions options;
  options.num_points = 100;
  options.seed = 37;
  const PlantedInstance instance = GeneratePlanted(options);
  EXPECT_EQ(SplitTrainTest(instance.data, 1.0, 1).train.size(), 100u);
  EXPECT_EQ(SplitTrainTest(instance.data, 0.0, 1).train.size(), 0u);
  const TrainTestSplit a = SplitTrainTest(instance.data, 0.5, 9);
  const TrainTestSplit b = SplitTrainTest(instance.data, 0.5, 9);
  EXPECT_EQ(a.train.size(), b.train.size());
  EXPECT_EQ(a.train.labels(), b.train.labels());
}

}  // namespace
}  // namespace monoclass
