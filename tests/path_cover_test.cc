// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the DAG minimum path cover (the Lemma 6 engine).

#include "graph/path_cover.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "util/random.h"

namespace monoclass {
namespace {

// Validates the partition and edge-following properties of a path cover.
void ExpectValidPathCover(const DagAdjacency& dag,
                          const std::vector<std::vector<int>>& paths) {
  std::vector<int> seen(dag.size(), 0);
  for (const auto& path : paths) {
    ASSERT_FALSE(path.empty());
    for (const int v : path) {
      ASSERT_GE(v, 0);
      ASSERT_LT(static_cast<size_t>(v), dag.size());
      ++seen[static_cast<size_t>(v)];
    }
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      const auto& out = dag[static_cast<size_t>(path[i])];
      EXPECT_NE(std::find(out.begin(), out.end(), path[i + 1]), out.end())
          << "consecutive path vertices must be a DAG edge";
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(PathCoverTest, EmptyDag) {
  EXPECT_TRUE(MinimumPathCover({}).empty());
}

TEST(PathCoverTest, SingletonVertex) {
  const auto paths = MinimumPathCover(DagAdjacency(1));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], std::vector<int>{0});
}

TEST(PathCoverTest, IsolatedVerticesEachTheirOwnPath) {
  const DagAdjacency dag(5);
  const auto paths = MinimumPathCover(dag);
  EXPECT_EQ(paths.size(), 5u);
  ExpectValidPathCover(dag, paths);
}

TEST(PathCoverTest, SingleChainIsOnePath) {
  // Transitively closed chain 0 -> 1 -> 2 -> 3.
  DagAdjacency dag(4);
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) dag[static_cast<size_t>(u)].push_back(v);
  }
  const auto paths = MinimumPathCover(dag);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<int>{0, 1, 2, 3}));
}

TEST(PathCoverTest, TwoParallelChains) {
  // Chains {0, 1} and {2, 3}, no cross edges.
  DagAdjacency dag(4);
  dag[0].push_back(1);
  dag[2].push_back(3);
  const auto paths = MinimumPathCover(dag);
  EXPECT_EQ(paths.size(), 2u);
  ExpectValidPathCover(dag, paths);
}

TEST(PathCoverTest, DiamondNeedsTwoPaths) {
  // 0 -> {1, 2} -> 3 with transitive edge 0 -> 3: min cover is 2 paths
  // (1 and 2 are incomparable).
  DagAdjacency dag(4);
  dag[0] = {1, 2, 3};
  dag[1] = {3};
  dag[2] = {3};
  const auto paths = MinimumPathCover(dag);
  EXPECT_EQ(paths.size(), 2u);
  ExpectValidPathCover(dag, paths);
}

TEST(PathCoverTest, AntichainOfKNeedsKPaths) {
  const DagAdjacency dag(7);  // no edges: 7 mutually incomparable vertices
  EXPECT_EQ(MinimumPathCover(dag).size(), 7u);
}

TEST(PathCoverTest, CoverSizeIsVerticesMinusMatching) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    // Random transitively-closed DAG: random linear order, keep each
    // forward pair with probability p, then transitively close.
    const int n = 2 + static_cast<int>(rng.UniformInt(10));
    std::vector<std::vector<bool>> reach(
        static_cast<size_t>(n), std::vector<bool>(static_cast<size_t>(n)));
    const double p = rng.UniformDoubleInRange(0.1, 0.6);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.Bernoulli(p)) reach[static_cast<size_t>(u)][static_cast<size_t>(v)] = true;
      }
    }
    for (int k = 0; k < n; ++k) {
      for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
          if (reach[static_cast<size_t>(u)][static_cast<size_t>(k)] &&
              reach[static_cast<size_t>(k)][static_cast<size_t>(v)]) {
            reach[static_cast<size_t>(u)][static_cast<size_t>(v)] = true;
          }
        }
      }
    }
    DagAdjacency dag(static_cast<size_t>(n));
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (reach[static_cast<size_t>(u)][static_cast<size_t>(v)]) {
          dag[static_cast<size_t>(u)].push_back(v);
        }
      }
    }
    const PathCoverResult result = MinimumPathCoverWithMatching(dag);
    ExpectValidPathCover(dag, result.paths);
    EXPECT_EQ(result.paths.size(),
              static_cast<size_t>(n - result.matching.size));
  }
}

}  // namespace
}  // namespace monoclass
