// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the O(n log n) 2D chain decomposition: validity, exact chain
// counts on structured instances, and -- the central property -- count
// equality with the general Lemma 6 algorithm (Dilworth width) on random
// inputs with heavy tie/duplicate structure.

#include "core/chain_decomposition_2d.h"

#include <gtest/gtest.h>

#include "core/antichain.h"
#include "data/synthetic.h"
#include "test_util.h"
#include "util/random.h"

namespace monoclass {
namespace {

TEST(ChainDecomposition2DTest, EmptySet) {
  EXPECT_EQ(MinimumChainDecomposition2D(PointSet()).NumChains(), 0u);
}

TEST(ChainDecomposition2DTest, SinglePoint) {
  const PointSet points({Point{1, 2}});
  const auto decomposition = MinimumChainDecomposition2D(points);
  EXPECT_EQ(decomposition.NumChains(), 1u);
  EXPECT_TRUE(ValidateChainDecomposition(points, decomposition));
}

TEST(ChainDecomposition2DTest, RejectsNon2D) {
  const PointSet points({Point{1, 2, 3}});
  EXPECT_DEATH(MinimumChainDecomposition2D(points), "");
}

TEST(ChainDecomposition2DTest, TotalOrderIsOneChain) {
  const PointSet points({Point{3, 3}, Point{1, 1}, Point{2, 2}});
  const auto decomposition = MinimumChainDecomposition2D(points);
  EXPECT_EQ(decomposition.NumChains(), 1u);
  EXPECT_TRUE(ValidateChainDecomposition(points, decomposition));
}

TEST(ChainDecomposition2DTest, AntichainIsAllSingletons) {
  const PointSet points({Point{0, 3}, Point{1, 2}, Point{2, 1}, Point{3, 0}});
  EXPECT_EQ(MinimumChainDecomposition2D(points).NumChains(), 4u);
}

TEST(ChainDecomposition2DTest, DuplicatesShareAChain) {
  const PointSet points({Point{1, 1}, Point{1, 1}, Point{1, 1}});
  const auto decomposition = MinimumChainDecomposition2D(points);
  EXPECT_EQ(decomposition.NumChains(), 1u);
  EXPECT_TRUE(ValidateChainDecomposition(points, decomposition));
}

TEST(ChainDecomposition2DTest, EqualXComparableByY) {
  // Same x: points are comparable, so they must form one chain.
  const PointSet points({Point{5, 1}, Point{5, 3}, Point{5, 2}});
  const auto decomposition = MinimumChainDecomposition2D(points);
  EXPECT_EQ(decomposition.NumChains(), 1u);
  EXPECT_TRUE(ValidateChainDecomposition(points, decomposition));
}

TEST(ChainDecomposition2DTest, EqualYComparableByX) {
  const PointSet points({Point{1, 5}, Point{3, 5}, Point{2, 5}});
  EXPECT_EQ(MinimumChainDecomposition2D(points).NumChains(), 1u);
}

TEST(ChainDecomposition2DTest, RecoversPlantedWidth) {
  for (const size_t w : {1u, 3u, 7u, 13u}) {
    ChainInstanceOptions options;
    options.num_chains = w;
    options.chain_length = 40;
    options.seed = w + 1;
    const ChainInstance instance = GenerateChainInstance(options);
    const auto decomposition =
        MinimumChainDecomposition2D(instance.data.points());
    EXPECT_EQ(decomposition.NumChains(), w);
    EXPECT_TRUE(
        ValidateChainDecomposition(instance.data.points(), decomposition));
  }
}

TEST(ChainDecomposition2DTest, MatchesLemma6CountOnRandomSets) {
  Rng rng(2027);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t n = 1 + rng.UniformInt(60);
    const auto set = testing_util::RandomLabeledSet(rng, n, 2);
    const auto fast = MinimumChainDecomposition2D(set.points());
    EXPECT_TRUE(ValidateChainDecomposition(set.points(), fast));
    EXPECT_EQ(fast.NumChains(), DominanceWidth(set.points()))
        << "trial " << trial;
  }
}

TEST(ChainDecomposition2DTest, MatchesLemma6CountOnTiedGrids) {
  // Small integer grid: lots of equal coordinates and duplicates.
  Rng rng(2028);
  for (int trial = 0; trial < 60; ++trial) {
    PointSet points;
    const size_t n = 1 + rng.UniformInt(40);
    for (size_t i = 0; i < n; ++i) {
      points.Add(Point{static_cast<double>(rng.UniformInt(4)),
                       static_cast<double>(rng.UniformInt(4))});
    }
    const auto fast = MinimumChainDecomposition2D(points);
    EXPECT_TRUE(ValidateChainDecomposition(points, fast));
    EXPECT_EQ(fast.NumChains(), DominanceWidth(points)) << "trial " << trial;
  }
}

TEST(ChainDecomposition2DTest, LargeInstanceIsFast) {
  // 200k points would take the Lemma 6 path minutes; the 2D path must
  // handle it comfortably inside the test budget.
  Rng rng(2029);
  PointSet points;
  for (size_t i = 0; i < 200000; ++i) {
    points.Add(Point{rng.UniformDouble(), rng.UniformDouble()});
  }
  const auto decomposition = MinimumChainDecomposition2D(points);
  EXPECT_GT(decomposition.NumChains(), 0u);
  EXPECT_EQ(decomposition.TotalPoints(), points.size());
}

}  // namespace
}  // namespace monoclass
