// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the minimal-generator monotone classifier: construction,
// evaluation, the 1D threshold form of paper eq. (6)-(7), assignment
// extension, and the monotonicity-by-construction property.

#include "core/classifier.h"

#include <limits>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace monoclass {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ClassifierTest, AlwaysZero) {
  const auto h = MonotoneClassifier::AlwaysZero(2);
  EXPECT_TRUE(h.IsAlwaysZero());
  EXPECT_FALSE(h.IsAlwaysOne());
  EXPECT_FALSE(h.Classify(Point{100, 100}));
}

TEST(ClassifierTest, AlwaysOne) {
  const auto h = MonotoneClassifier::AlwaysOne(2);
  EXPECT_TRUE(h.IsAlwaysOne());
  EXPECT_FALSE(h.IsAlwaysZero());
  EXPECT_TRUE(h.Classify(Point{-100, -100}));
}

TEST(ClassifierTest, SingleGenerator) {
  const auto h = MonotoneClassifier::FromGenerators({Point{1, 2}}, 2);
  EXPECT_TRUE(h.Classify(Point{1, 2}));   // boundary included
  EXPECT_TRUE(h.Classify(Point{5, 5}));
  EXPECT_FALSE(h.Classify(Point{0.5, 5}));
  EXPECT_FALSE(h.Classify(Point{5, 1.5}));
}

TEST(ClassifierTest, RedundantGeneratorsPruned) {
  const auto h = MonotoneClassifier::FromGenerators(
      {Point{1, 1}, Point{2, 2}, Point{1, 1}, Point{3, 0.5}}, 2);
  // (2,2) dominates (1,1); the duplicate (1,1) collapses to one.
  ASSERT_EQ(h.generators().size(), 2u);
}

TEST(ClassifierTest, MinimalGeneratorsKeepsAntichain) {
  const auto minimal = MinimalGenerators(
      {Point{0, 3}, Point{3, 0}, Point{2, 2}, Point{4, 4}});
  // (4,4) dominates (2,2); the remaining three are pairwise incomparable.
  ASSERT_EQ(minimal.size(), 3u);
  for (size_t i = 0; i < minimal.size(); ++i) {
    for (size_t j = 0; j < minimal.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(DominatesEq(minimal[i], minimal[j]));
      }
    }
  }
}

TEST(ClassifierTest, MinimalGeneratorsAllDuplicates) {
  const auto minimal =
      MinimalGenerators({Point{1, 1}, Point{1, 1}, Point{1, 1}});
  EXPECT_EQ(minimal.size(), 1u);
}

TEST(Threshold1DTest, StrictInequality) {
  // h^tau(p) = 1 iff p > tau (paper eq. (6)).
  const auto h = MonotoneClassifier::Threshold1D(2.0);
  EXPECT_FALSE(h.Classify(Point{2.0}));
  EXPECT_TRUE(h.Classify(Point{2.0000001}));
  EXPECT_TRUE(h.Classify(Point{3.0}));
  EXPECT_FALSE(h.Classify(Point{1.0}));
}

TEST(Threshold1DTest, MinusInfinityIsAlwaysOne) {
  const auto h = MonotoneClassifier::Threshold1D(-kInf);
  EXPECT_TRUE(h.IsAlwaysOne());
  EXPECT_TRUE(h.Classify(Point{-1e308}));
}

TEST(ClassifierTest, FromAssignmentAcceptsMonotone) {
  const PointSet points({Point{0, 0}, Point{1, 1}, Point{2, 2}});
  const auto h = MonotoneClassifier::FromAssignment(points, {0, 0, 1});
  ASSERT_TRUE(h.has_value());
  EXPECT_FALSE(h->Classify(points[0]));
  EXPECT_FALSE(h->Classify(points[1]));
  EXPECT_TRUE(h->Classify(points[2]));
}

TEST(ClassifierTest, FromAssignmentRejectsNonMonotone) {
  const PointSet points({Point{0, 0}, Point{1, 1}});
  EXPECT_FALSE(MonotoneClassifier::FromAssignment(points, {1, 0}).has_value());
}

TEST(ClassifierTest, FromAssignmentEqualPointsMustAgree) {
  const PointSet points({Point{1, 1}, Point{1, 1}});
  EXPECT_FALSE(MonotoneClassifier::FromAssignment(points, {1, 0}).has_value());
  EXPECT_FALSE(MonotoneClassifier::FromAssignment(points, {0, 1}).has_value());
  EXPECT_TRUE(MonotoneClassifier::FromAssignment(points, {1, 1}).has_value());
}

TEST(ClassifierTest, FromAssignmentIncomparableFreedom) {
  const PointSet points({Point{0, 1}, Point{1, 0}});
  EXPECT_TRUE(MonotoneClassifier::FromAssignment(points, {1, 0}).has_value());
  EXPECT_TRUE(MonotoneClassifier::FromAssignment(points, {0, 1}).has_value());
}

TEST(ClassifierTest, FromAssignmentRoundTripsOnPoints) {
  Rng rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    // Random upward-closed assignment: labels from a random generator set.
    const auto set = testing_util::RandomLabeledSet(rng, 12, 3);
    const auto reference = MonotoneClassifier::FromGenerators(
        {Point{0.3, 0.4, 0.5}, Point{0.6, 0.1, 0.7}}, 3);
    const std::vector<Label> values = reference.ClassifySet(set.points());
    const auto rebuilt =
        MonotoneClassifier::FromAssignment(set.points(), values);
    ASSERT_TRUE(rebuilt.has_value());
    EXPECT_EQ(rebuilt->ClassifySet(set.points()), values) << "trial " << trial;
  }
}

TEST(ClassifierTest, ClassificationIsMonotoneByConstruction) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Point> generators;
    const size_t g = 1 + rng.UniformInt(4);
    for (size_t i = 0; i < g; ++i) {
      generators.push_back(
          Point{rng.UniformDouble(), rng.UniformDouble()});
    }
    const auto h = MonotoneClassifier::FromGenerators(generators, 2);
    for (int check = 0; check < 50; ++check) {
      const Point low{rng.UniformDouble(), rng.UniformDouble()};
      const Point high{low[0] + rng.UniformDouble(),
                       low[1] + rng.UniformDouble()};
      // high dominates low, so h(high) >= h(low).
      EXPECT_GE(h.Classify(high), h.Classify(low));
    }
  }
}

TEST(ErrorsTest, CountErrorsMatchesDefinition) {
  LabeledPointSet set;
  set.Add(Point{0}, 0);
  set.Add(Point{1}, 1);
  set.Add(Point{2}, 0);  // violates monotonicity of the labels themselves
  set.Add(Point{3}, 1);
  const auto h = MonotoneClassifier::Threshold1D(0.5);  // 1 iff p > 0.5
  // Predictions: 0, 1, 1, 1 -> errors at Point{2} only.
  EXPECT_EQ(CountErrors(h, set), 1u);
}

TEST(ErrorsTest, WeightedErrorSpecializesToCount) {
  Rng rng(17);
  const auto labeled = testing_util::RandomLabeledSet(rng, 30, 2);
  const auto weighted = WeightedPointSet::UnitWeights(labeled);
  const auto h = MonotoneClassifier::FromGenerators({Point{0.5, 0.5}}, 2);
  EXPECT_DOUBLE_EQ(WeightedError(h, weighted),
                   static_cast<double>(CountErrors(h, labeled)));
}

TEST(ErrorsTest, WeightedErrorUsesWeights) {
  WeightedPointSet set;
  set.Add(Point{0}, 1, 10.0);  // classified 0 by threshold 0.5 -> error 10
  set.Add(Point{1}, 1, 2.0);   // classified 1 -> correct
  set.Add(Point{2}, 0, 5.0);   // classified 1 -> error 5
  const auto h = MonotoneClassifier::Threshold1D(0.5);
  EXPECT_DOUBLE_EQ(WeightedError(h, set), 15.0);
}

TEST(MonotoneAssignmentTest, AuditsDominancePairs) {
  const PointSet points({Point{0, 0}, Point{2, 2}, Point{1, 3}});
  EXPECT_TRUE(IsMonotoneAssignment(points, {0, 1, 1}));
  EXPECT_TRUE(IsMonotoneAssignment(points, {0, 0, 0}));
  EXPECT_TRUE(IsMonotoneAssignment(points, {0, 1, 0}));  // incomparable pair
  EXPECT_FALSE(IsMonotoneAssignment(points, {1, 0, 0}));
}

TEST(ClassifierTest, ToStringMentionsGenerators) {
  const auto h = MonotoneClassifier::FromGenerators({Point{1, 2}}, 2);
  EXPECT_NE(h.ToString().find("(1, 2)"), std::string::npos);
}

}  // namespace
}  // namespace monoclass
