// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the tracing layer (obs/trace.h): balanced B/E streams,
// per-thread monotone timestamps, Chrome-trace JSON validity, the text
// report, and the end-to-end acceptance scenario -- a multi_d active run
// whose span tree covers chain decomposition -> per-chain 1D sampling ->
// passive min-cut, with probe counters exactly matching the oracle.

#include "obs/trace.h"

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "active/multi_d.h"
#include "active/oracle.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/concurrency.h"
#include "util/json.h"

namespace monoclass {
namespace obs {
namespace {

// Restarts tracing from an empty buffer for each test.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    StopTracing();
    ClearTrace();
    StartTracing();
  }
  void TearDown() override {
    StopTracing();
    ClearTrace();
    SetEnabled(false);
  }
};

TEST_F(TraceTest, SpansEmitBalancedEvents) {
  {
    Span outer("outer");
    { Span inner("inner"); }
    { Span inner("inner"); }
  }
  const std::vector<TraceEvent> events = TraceSnapshot();
  ASSERT_EQ(events.size(), 6u);
  // File order: B outer, B inner, E inner, B inner, E inner, E outer.
  EXPECT_EQ(std::string(events[0].name), "outer");
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(std::string(events[5].name), "outer");
  EXPECT_EQ(events[5].phase, 'E');
  int depth = 0;
  for (const TraceEvent& event : events) {
    depth += event.phase == 'B' ? 1 : -1;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(TraceTest, TimestampsMonotonePerThread) {
  for (int i = 0; i < 50; ++i) {
    Span span("tick");
  }
  std::map<uint32_t, double> last;
  for (const TraceEvent& event : TraceSnapshot()) {
    const auto it = last.find(event.tid);
    if (it != last.end()) {
      EXPECT_GE(event.ts_us, it->second);
    }
    last[event.tid] = event.ts_us;
  }
}

TEST_F(TraceTest, SpansInactiveWhenTracingStopped) {
  StopTracing();
  { Span span("ignored"); }
  EXPECT_TRUE(TraceSnapshot().empty());
}

TEST_F(TraceTest, SpanOpenAcrossStopStillCloses) {
  std::vector<TraceEvent> events;
  {
    Span span("crossing");
    StopTracing();
  }  // E must still be recorded for the already-open span
  events = TraceSnapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
}

TEST_F(TraceTest, ChromeTraceIsValidJson) {
  {
    Span outer("phase one");
    Span inner("with \"quotes\"");
  }
  std::ostringstream out;
  WriteChromeTrace(out);
  std::string error;
  const auto doc = JsonValue::Parse(out.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->AsArray().size(), 4u);
  for (const JsonValue& event : events->AsArray()) {
    EXPECT_TRUE(event.Find("name")->is_string());
    EXPECT_TRUE(event.Find("ts")->is_number());
    EXPECT_TRUE(event.Find("pid")->is_number());
    EXPECT_TRUE(event.Find("tid")->is_number());
    const std::string& ph = event.Find("ph")->AsString();
    EXPECT_TRUE(ph == "B" || ph == "E");
  }
  EXPECT_EQ(doc->Find("displayTimeUnit")->AsString(), "ms");
}

TEST_F(TraceTest, MultiThreadedSpansKeepPerThreadBalance) {
  // Four concurrent emitters via the library's own pool (raw
  // standard-library threads are banned outside util/concurrency;
  // tools/lint.sh rule 6).
  ParallelForEach(4, ParallelOptions{.threads = 4}, [](size_t) {
    for (int i = 0; i < 100; ++i) {
      Span outer("mt/outer");
      Span inner("mt/inner");
    }
  });
  std::map<uint32_t, int> depth;
  std::map<uint32_t, double> last;
  for (const TraceEvent& event : TraceSnapshot()) {
    depth[event.tid] += event.phase == 'B' ? 1 : -1;
    EXPECT_GE(depth[event.tid], 0);
    const auto it = last.find(event.tid);
    if (it != last.end()) {
      EXPECT_GE(event.ts_us, it->second);
    }
    last[event.tid] = event.ts_us;
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
}

TEST_F(TraceTest, TextReportAggregatesByPath) {
  {
    Span outer("report/outer");
    { Span inner("report/inner"); }
    { Span inner("report/inner"); }
  }
  std::ostringstream out;
  WriteTextReport(out);
  const std::string report = out.str();
  EXPECT_NE(report.find("report/outer"), std::string::npos);
  EXPECT_NE(report.find("report/outer/report/inner"), std::string::npos);
  EXPECT_EQ(DroppedSpans(), 0u);
}

// --- acceptance scenario ------------------------------------------------
// A real multi_d run with obs fully on: the trace must contain the
// documented span hierarchy and the probe counters must match the
// oracle's own accounting exactly. Needs the library's instrumentation
// compiled in, so it is skipped in MONOCLASS_OBS=OFF builds.
#if MC_OBS_COMPILED
TEST_F(TraceTest, EndToEndActiveRunTracesPipelineAndCountsProbes) {
  MetricsRegistry::Global().ResetAll();
  PlantedOptions options;
  options.num_points = 300;
  options.dimension = 2;
  options.noise_flips = 6;
  options.seed = 11;
  const PlantedInstance instance = GeneratePlanted(options);
  InMemoryOracle oracle(instance.data);

  const uint64_t calls_before =
      MetricsRegistry::Global().Snapshot().CounterValue("oracle.probe_calls");
  const uint64_t distinct_before = MetricsRegistry::Global()
                                       .Snapshot()
                                       .CounterValue("oracle.probes_distinct");

  ActiveSolveOptions solve_options;
  solve_options.sampling = ActiveSamplingParams::Practical(1.0, 0.1);
  const ActiveSolveResult result =
      SolveActiveMultiD(instance.data.points(), oracle, solve_options);

  // Probe counters match the oracle exactly.
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("oracle.probe_calls") - calls_before,
            oracle.NumProbeCalls());
  EXPECT_EQ(snapshot.CounterValue("oracle.probes_distinct") - distinct_before,
            oracle.NumProbes());
  EXPECT_EQ(result.probes, oracle.NumProbes());

  // The span tree covers the documented pipeline phases.
  const std::vector<TraceEvent> events = TraceSnapshot();
  std::map<std::string, int> begins;
  int depth = 0;
  for (const TraceEvent& event : events) {
    if (event.phase == 'B') ++begins[event.name];
    depth += event.phase == 'B' ? 1 : -1;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(begins["active/solve"], 1);
  EXPECT_EQ(begins["active/chain_decomposition"], 1);
  EXPECT_EQ(begins["par.chain"], static_cast<int>(result.num_chains));
  EXPECT_EQ(begins["passive/solve"], 1);
  EXPECT_GE(begins["passive/maxflow"], 1);

  // The probe budget was filled in against the Theorem 2 bound.
  EXPECT_EQ(result.probe_budget.measured_probes, oracle.NumProbes());
  EXPECT_EQ(result.probe_budget.n, instance.data.size());
  EXPECT_EQ(result.probe_budget.w, result.num_chains);
  EXPECT_GT(result.probe_budget.theorem2_bound, 0.0);
}
#endif  // MC_OBS_COMPILED

}  // namespace
}  // namespace obs
}  // namespace monoclass
