// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Experiment E1 as tests: every quantitative fact the paper states about
// the worked example of Figures 1 and 2 must hold on our realization of
// the coordinates:
//   * dominance width w = 6, witnessed by {p10, p11, p12, p16, p13, p14};
//   * the stated 6-chain decomposition is valid;
//   * optimal unweighted error k* = 3, achieved by the classifier that
//     flips exactly {p1, p11, p15};
//   * contending points are exactly {p1..p5, p9, p11, p13, p14, p15};
//   * optimal weighted error 104, achieved by mapping {p10, p12, p16} to 1;
//   * the minimum cut consists of exactly the five sink-side edges of
//     p1, p4, p9, p13, p14.

#include "core/paper_example.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/antichain.h"
#include "core/chain_decomposition.h"
#include "core/classifier.h"
#include "passive/brute_force.h"
#include "passive/contending.h"
#include "passive/flow_solver.h"

namespace monoclass {
namespace {

// Paper index p_k -> our 0-based index.
constexpr size_t P(size_t k) { return k - 1; }

class PaperExampleTest : public ::testing::Test {
 protected:
  const LabeledPointSet labeled_ = PaperFigure1Points();
  const WeightedPointSet weighted_ = PaperFigure1WeightedPoints();
};

TEST_F(PaperExampleTest, SixteenPointsInTwoD) {
  EXPECT_EQ(labeled_.size(), 16u);
  EXPECT_EQ(labeled_.dimension(), 2u);
}

TEST_F(PaperExampleTest, LabelsMatchFigure1) {
  // Black (label 1): p1, p4, p9, p10, p12, p13, p14, p16.
  for (const size_t k : {1u, 4u, 9u, 10u, 12u, 13u, 14u, 16u}) {
    EXPECT_EQ(labeled_.label(P(k)), 1) << "p" << k;
  }
  for (const size_t k : {2u, 3u, 5u, 6u, 7u, 8u, 11u, 15u}) {
    EXPECT_EQ(labeled_.label(P(k)), 0) << "p" << k;
  }
}

TEST_F(PaperExampleTest, DominanceWidthIsSix) {
  EXPECT_EQ(DominanceWidth(labeled_.points()), 6u);
}

TEST_F(PaperExampleTest, PaperAntichainIsAMaximumAntichain) {
  const std::vector<size_t> stated = {P(10), P(11), P(12), P(16), P(13),
                                      P(14)};
  EXPECT_TRUE(IsAntichain(labeled_.points(), stated));
  EXPECT_EQ(stated.size(), DominanceWidth(labeled_.points()));
}

TEST_F(PaperExampleTest, PaperChainDecompositionIsValid) {
  ChainDecomposition stated;
  stated.chains = {
      {P(1), P(2), P(3), P(4), P(10)},
      {P(11)},
      {P(5), P(9), P(12)},
      {P(16)},
      {P(13)},
      {P(6), P(7), P(8), P(14), P(15)},
  };
  EXPECT_TRUE(ValidateChainDecomposition(labeled_.points(), stated));
  EXPECT_EQ(stated.NumChains(), 6u);
}

TEST_F(PaperExampleTest, MinimumDecompositionHasSixChains) {
  const auto decomposition = MinimumChainDecomposition(labeled_.points());
  EXPECT_EQ(decomposition.NumChains(), 6u);
  EXPECT_TRUE(ValidateChainDecomposition(labeled_.points(), decomposition));
}

TEST_F(PaperExampleTest, OptimalUnweightedErrorIsThree) {
  EXPECT_EQ(OptimalErrorBruteForce(labeled_), 3u);
  EXPECT_EQ(OptimalError(labeled_), 3u);
}

TEST_F(PaperExampleTest, StatedOptimalClassifierHasErrorThree) {
  // h: all black points -> 1 except p1; white p11, p15 -> 1.
  std::vector<Label> values(16, 0);
  for (const size_t k : {4u, 9u, 10u, 12u, 13u, 14u, 16u, 11u, 15u}) {
    values[P(k)] = 1;
  }
  const auto h =
      MonotoneClassifier::FromAssignment(labeled_.points(), values);
  ASSERT_TRUE(h.has_value()) << "the paper's h must be monotone";
  EXPECT_EQ(CountErrors(*h, labeled_), 3u);
}

TEST_F(PaperExampleTest, ContendingPointsMatchFigure2a) {
  const auto partition =
      ComputeContending(labeled_.points(), labeled_.labels());
  const std::vector<size_t> expected = {P(1), P(2), P(3),  P(4),  P(5),
                                        P(9), P(11), P(13), P(14), P(15)};
  std::vector<size_t> sorted = expected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(partition.contending, sorted);
}

TEST_F(PaperExampleTest, StatedWeightedOptimumIs104) {
  // h': p10, p12, p16 -> 1, everything else -> 0; w-err = 104.
  std::vector<Label> values(16, 0);
  values[P(10)] = 1;
  values[P(12)] = 1;
  values[P(16)] = 1;
  const auto h =
      MonotoneClassifier::FromAssignment(labeled_.points(), values);
  ASSERT_TRUE(h.has_value());
  EXPECT_DOUBLE_EQ(WeightedError(*h, weighted_), 104.0);
}

TEST_F(PaperExampleTest, UnweightedOptimalHasWeightedError220) {
  // The paper: the Figure 1(a) optimum (errors p1, p11, p15) costs
  // 100 + 60 + 60 = 220 under the Figure 1(b) weights.
  std::vector<Label> values(16, 0);
  for (const size_t k : {4u, 9u, 10u, 12u, 13u, 14u, 16u, 11u, 15u}) {
    values[P(k)] = 1;
  }
  const auto h =
      MonotoneClassifier::FromAssignment(labeled_.points(), values);
  ASSERT_TRUE(h.has_value());
  EXPECT_DOUBLE_EQ(WeightedError(*h, weighted_), 220.0);
}

TEST_F(PaperExampleTest, FlowSolverFindsWeightedOptimum104) {
  const PassiveSolveResult result = SolvePassiveWeighted(weighted_);
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 104.0);
  EXPECT_DOUBLE_EQ(result.flow_value, 104.0);
  EXPECT_EQ(result.num_contending, 10u);
}

TEST_F(PaperExampleTest, BruteForceConfirmsWeightedOptimum104) {
  EXPECT_DOUBLE_EQ(SolvePassiveBruteForce(weighted_).optimal_weighted_error,
                   104.0);
}

TEST_F(PaperExampleTest, OptimalCutClassifierMapsContendingToZero) {
  // Figure 2(b): the optimal cut takes the five sink edges of p1, p4, p9,
  // p13, p14, i.e. h*_cut maps every contending point to 0.
  const PassiveSolveResult result = SolvePassiveWeighted(weighted_);
  for (const size_t k : {1u, 2u, 3u, 4u, 5u, 9u, 11u, 13u, 14u, 15u}) {
    EXPECT_EQ(result.assignment[P(k)], 0) << "p" << k;
  }
  // Non-contending points keep their labels.
  for (const size_t k : {6u, 7u, 8u}) {
    EXPECT_EQ(result.assignment[P(k)], 0) << "p" << k;
  }
  for (const size_t k : {10u, 12u, 16u}) {
    EXPECT_EQ(result.assignment[P(k)], 1) << "p" << k;
  }
}

TEST_F(PaperExampleTest, CrossChainDominancesFromFigure) {
  const PointSet& points = labeled_.points();
  // p11 >= p4; p15 >= p1, p9, p13, p14; p5 >= p1.
  EXPECT_TRUE(DominatesEq(points[P(11)], points[P(4)]));
  EXPECT_TRUE(DominatesEq(points[P(15)], points[P(1)]));
  EXPECT_TRUE(DominatesEq(points[P(15)], points[P(9)]));
  EXPECT_TRUE(DominatesEq(points[P(15)], points[P(13)]));
  EXPECT_TRUE(DominatesEq(points[P(15)], points[P(14)]));
  EXPECT_TRUE(DominatesEq(points[P(5)], points[P(1)]));
  // p15 must not dominate the non-contending maxima p10, p12, p16.
  EXPECT_FALSE(DominatesEq(points[P(15)], points[P(10)]));
  EXPECT_FALSE(DominatesEq(points[P(15)], points[P(12)]));
  EXPECT_FALSE(DominatesEq(points[P(15)], points[P(16)]));
}

}  // namespace
}  // namespace monoclass
