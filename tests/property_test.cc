// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P)
// covering the library's core invariants across instance-shape grids:
//
//   * passive flow solver == brute force on every (n, d) cell;
//   * chain decomposition invariants across planted widths;
//   * the active pipeline's error floor / probe ceiling across
//     (noise, epsilon) cells.

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "active/multi_d.h"
#include "active/oracle.h"
#include "core/antichain.h"
#include "core/chain_decomposition.h"
#include "core/chain_decomposition_2d.h"
#include "data/synthetic.h"
#include "passive/brute_force.h"
#include "passive/flow_solver.h"
#include "passive/isotonic_1d.h"
#include "test_util.h"
#include "util/random.h"

namespace monoclass {
namespace {

// ---------- passive solver vs brute force across (n, d) ----------

class PassiveEquivalenceProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(PassiveEquivalenceProperty, FlowMatchesBruteForce) {
  const auto [n, d] = GetParam();
  Rng rng(1000 * n + d);
  for (int trial = 0; trial < 15; ++trial) {
    const auto set = testing_util::RandomWeightedSet(
        rng, n, d, rng.UniformDoubleInRange(0.15, 0.85));
    const auto flow = SolvePassiveWeighted(set);
    const auto brute = SolvePassiveBruteForce(set);
    ASSERT_NEAR(flow.optimal_weighted_error, brute.optimal_weighted_error,
                1e-9)
        << "n=" << n << " d=" << d << " trial=" << trial;
    ASSERT_TRUE(IsMonotoneAssignment(set.points(), flow.assignment));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizeDimensionGrid, PassiveEquivalenceProperty,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 5, 9, 14),
                       ::testing::Values<size_t>(1, 2, 3, 5)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, size_t>>&
           param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_d" +
             std::to_string(std::get<1>(param_info.param));
    });

// ---------- chain decompositions across planted widths ----------

class ChainWidthProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(ChainWidthProperty, AllDecomposersAgreeOnPlantedWidth) {
  const size_t w = GetParam();
  ChainInstanceOptions options;
  options.num_chains = w;
  options.chain_length = 24;
  options.noise_per_chain = 2;
  options.seed = 11 * w + 1;
  const ChainInstance instance = GenerateChainInstance(options);
  const PointSet& points = instance.data.points();

  const auto lemma6 = MinimumChainDecomposition(points);
  const auto fast2d = MinimumChainDecomposition2D(points);
  const auto greedy = GreedyChainDecomposition(points);

  EXPECT_TRUE(ValidateChainDecomposition(points, lemma6));
  EXPECT_TRUE(ValidateChainDecomposition(points, fast2d));
  EXPECT_TRUE(ValidateChainDecomposition(points, greedy));
  EXPECT_EQ(lemma6.NumChains(), w);
  EXPECT_EQ(fast2d.NumChains(), w);
  EXPECT_GE(greedy.NumChains(), w);
  EXPECT_EQ(DominanceWidth(points), w);
  EXPECT_EQ(MaximumAntichain(points).size(), w);
}

INSTANTIATE_TEST_SUITE_P(PlantedWidths, ChainWidthProperty,
                         ::testing::Values<size_t>(1, 2, 3, 5, 8, 13, 21),
                         ::testing::PrintToStringParamName());

// ---------- active pipeline invariants across (noise, eps) ----------

struct ActiveCell {
  size_t noise_per_chain;
  double epsilon;
};

class ActivePipelineProperty : public ::testing::TestWithParam<ActiveCell> {
};

TEST_P(ActivePipelineProperty, ErrorFloorAndProbeCeiling) {
  const ActiveCell cell = GetParam();
  ChainInstanceOptions data_options;
  data_options.num_chains = 4;
  data_options.chain_length = 700;
  data_options.noise_per_chain = cell.noise_per_chain;
  data_options.seed = 17 + cell.noise_per_chain;
  const ChainInstance instance = GenerateChainInstance(data_options);
  const size_t optimum = OptimalError(instance.data);

  InMemoryOracle oracle(instance.data);
  ActiveSolveOptions options;
  options.sampling = ActiveSamplingParams::Practical(cell.epsilon, 0.05);
  options.seed = 2026;
  options.precomputed_chains = instance.chains;
  const auto result =
      SolveActiveMultiD(instance.data.points(), oracle, options);

  // Invariants that hold on EVERY run, independent of sampling luck:
  // the returned error can never beat k*, probes can never exceed n,
  // Sigma labels are true labels, the classifier is monotone on P.
  EXPECT_GE(CountErrors(result.classifier, instance.data), optimum);
  EXPECT_LE(result.probes, instance.data.size());
  EXPECT_TRUE(IsMonotoneAssignment(
      instance.data.points(),
      result.classifier.ClassifySet(instance.data.points())));
  EXPECT_EQ(result.num_chains, 4u);
}

INSTANTIATE_TEST_SUITE_P(
    NoiseEpsilonGrid, ActivePipelineProperty,
    ::testing::Values(ActiveCell{0, 1.0}, ActiveCell{0, 0.25},
                      ActiveCell{10, 1.0}, ActiveCell{10, 0.5},
                      ActiveCell{70, 1.0}, ActiveCell{70, 0.25},
                      ActiveCell{350, 0.5}),
    [](const ::testing::TestParamInfo<ActiveCell>& param_info) {
      std::string eps = std::to_string(param_info.param.epsilon);
      eps.erase(eps.find_last_not_of('0') + 1);
      for (char& c : eps) {
        if (c == '.') c = '_';
      }
      return "noise" + std::to_string(param_info.param.noise_per_chain) +
             "_eps" + eps;
    });

// ---------- 1D exact solver vs flow solver across tie densities ----------

class TieDensityProperty : public ::testing::TestWithParam<int> {};

TEST_P(TieDensityProperty, Isotonic1DMatchesFlowUnderTies) {
  const int grid = GetParam();  // smaller grid = denser ties
  Rng rng(static_cast<uint64_t>(grid) * 7919);
  for (int trial = 0; trial < 20; ++trial) {
    WeightedPointSet set;
    const size_t n = 1 + rng.UniformInt(40);
    for (size_t i = 0; i < n; ++i) {
      set.Add(
          Point{static_cast<double>(rng.UniformInt(
              static_cast<uint64_t>(grid)))},
          rng.Bernoulli(0.5) ? 1 : 0, rng.UniformDoubleInRange(0.5, 4.0));
    }
    const auto direct = Solve1DWeighted(ToWeighted1D(set));
    const auto flow = SolvePassiveWeighted(set);
    ASSERT_NEAR(direct.optimal_weighted_error, flow.optimal_weighted_error,
                1e-9)
        << "grid=" << grid << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(TieDensities, TieDensityProperty,
                         ::testing::Values(2, 3, 5, 10, 50),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace monoclass
