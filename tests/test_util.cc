// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.

#include "test_util.h"

#include <algorithm>
#include <limits>

namespace monoclass {
namespace testing_util {

FlowInstance RandomFlowInstance(Rng& rng, int num_vertices, int num_edges,
                                double max_capacity) {
  MC_CHECK_GE(num_vertices, 2);
  FlowInstance instance;
  instance.num_vertices = num_vertices;
  instance.source = 0;
  instance.sink = num_vertices - 1;
  for (int e = 0; e < num_edges; ++e) {
    const int from = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(num_vertices)));
    int to = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(num_vertices)));
    if (from == to) continue;  // skip self-loops; slightly fewer edges is fine
    if (to == instance.source || from == instance.sink) continue;
    const double capacity =
        static_cast<double>(1 + rng.UniformInt(
                                    static_cast<uint64_t>(max_capacity)));
    instance.edges.push_back({from, to, capacity});
  }
  return instance;
}

double BruteForceMinCut(const FlowInstance& instance) {
  const int n = instance.num_vertices;
  MC_CHECK_LE(n, 20);
  double best = std::numeric_limits<double>::infinity();
  const uint32_t limit = uint32_t{1} << n;
  for (uint32_t side = 0; side < limit; ++side) {
    // side bit = 1 means "source side".
    if (!((side >> instance.source) & 1)) continue;
    if ((side >> instance.sink) & 1) continue;
    double capacity = 0.0;
    for (const auto& e : instance.edges) {
      if (((side >> e.from) & 1) && !((side >> e.to) & 1)) {
        capacity += e.capacity;
      }
    }
    best = std::min(best, capacity);
  }
  return best;
}

BipartiteGraph RandomBipartite(Rng& rng, int num_left, int num_right,
                               double p) {
  BipartiteGraph graph(num_left, num_right);
  for (int l = 0; l < num_left; ++l) {
    for (int r = 0; r < num_right; ++r) {
      if (rng.Bernoulli(p)) graph.AddEdge(l, r);
    }
  }
  return graph;
}

bool IsValidMatching(const BipartiteGraph& graph, const Matching& matching) {
  if (matching.left_to_right.size() !=
          static_cast<size_t>(graph.NumLeft()) ||
      matching.right_to_left.size() !=
          static_cast<size_t>(graph.NumRight())) {
    return false;
  }
  int count = 0;
  for (int l = 0; l < graph.NumLeft(); ++l) {
    const int r = matching.left_to_right[static_cast<size_t>(l)];
    if (r == -1) continue;
    ++count;
    if (r < 0 || r >= graph.NumRight()) return false;
    if (matching.right_to_left[static_cast<size_t>(r)] != l) return false;
    const auto& neighbors = graph.Neighbors(l);
    if (std::find(neighbors.begin(), neighbors.end(), r) == neighbors.end()) {
      return false;  // matched along a non-edge
    }
  }
  for (int r = 0; r < graph.NumRight(); ++r) {
    const int l = matching.right_to_left[static_cast<size_t>(r)];
    if (l != -1 && matching.left_to_right[static_cast<size_t>(l)] != r) {
      return false;
    }
  }
  return count == matching.size;
}

bool IsValidVertexCover(const BipartiteGraph& graph,
                        const std::vector<bool>& left,
                        const std::vector<bool>& right) {
  for (int l = 0; l < graph.NumLeft(); ++l) {
    for (const int r : graph.Neighbors(l)) {
      if (!left[static_cast<size_t>(l)] && !right[static_cast<size_t>(r)]) {
        return false;
      }
    }
  }
  return true;
}

LabeledPointSet RandomLabeledSet(Rng& rng, size_t n, size_t d,
                                 double positive_rate) {
  LabeledPointSet set;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> coords(d);
    for (auto& c : coords) c = rng.UniformDouble();
    set.Add(Point(std::move(coords)), rng.Bernoulli(positive_rate) ? 1 : 0);
  }
  return set;
}

WeightedPointSet RandomWeightedSet(Rng& rng, size_t n, size_t d,
                                   double positive_rate, double max_weight) {
  WeightedPointSet set;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> coords(d);
    for (auto& c : coords) c = rng.UniformDouble();
    set.Add(Point(std::move(coords)), rng.Bernoulli(positive_rate) ? 1 : 0,
            rng.UniformDoubleInRange(0.5, max_weight));
  }
  return set;
}

}  // namespace testing_util
}  // namespace monoclass
