// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Proof that clang's thread-safety analysis is live in this build, not
// just silently accepted annotation macros. The file plays both roles:
//
//   * compiled normally it is a well-locked program (the positive
//     control: annotations present, analysis clean, binary exits 0);
//   * compiled with -DMONOCLASS_EXPECT_THREAD_SAFETY_ERROR it contains
//     one deliberate lock-discipline violation, and the
//     thread_safety_negative_compile ctest (WILL_FAIL) asserts that
//     clang REJECTS it under -Werror=thread-safety-analysis.
//
// If someone breaks the wiring -- drops the warning flag, stubs the
// macros under clang, detaches the analysis from CI -- the negative
// test starts compiling cleanly and fails the suite.

#include "util/concurrency.h"
#include "util/thread_annotations.h"

namespace monoclass {
namespace {

class Account {
 public:
  void Deposit(int amount) {
    MutexLock lock(mu_);
    balance_ += amount;
  }

  int Balance() const {
    MutexLock lock(mu_);
    return balance_;
  }

#ifdef MONOCLASS_EXPECT_THREAD_SAFETY_ERROR
  // Deliberate misuse: reads the guarded member with no lock held.
  // Under clang this is error: reading variable 'balance_' requires
  // holding mutex 'mu_' [-Werror,-Wthread-safety-analysis].
  int RacyBalance() const { return balance_; }
#endif

 private:
  mutable Mutex mu_;
  int balance_ MC_GUARDED_BY(mu_) = 0;
};

}  // namespace
}  // namespace monoclass

int main() {
  monoclass::Account account;
  account.Deposit(41);
  account.Deposit(1);
  return account.Balance() == 42 ? 0 : 1;
}
