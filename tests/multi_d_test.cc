// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the Theorem 2/3 multi-dimensional active algorithm:
// correctness on the paper's worked example, the (1+eps) guarantee across
// randomized trials on width-controlled instances, probe accounting, the
// precomputed-chain and greedy-chain paths, and determinism.

#include "active/multi_d.h"

#include <gtest/gtest.h>

#include "active/oracle.h"
#include "core/paper_example.h"
#include "data/synthetic.h"
#include "passive/flow_solver.h"

namespace monoclass {
namespace {

TEST(MultiDActiveTest, PaperExampleReachesApproximateOptimum) {
  const LabeledPointSet set = PaperFigure1Points();
  InMemoryOracle oracle(set);
  ActiveSolveOptions options;
  options.sampling = ActiveSamplingParams::Paper(0.5, 0.01);
  const auto result = SolveActiveMultiD(set.points(), oracle, options);
  // n = 16: every chain level full-probes, so the result is exactly k*=3.
  EXPECT_EQ(result.num_chains, 6u);
  EXPECT_EQ(CountErrors(result.classifier, set), 3u);
  EXPECT_EQ(result.probes, 16u);
}

TEST(MultiDActiveTest, CleanChainsRecoverZeroError) {
  ChainInstanceOptions data_options;
  data_options.num_chains = 6;
  data_options.chain_length = 512;
  data_options.noise_per_chain = 0;
  data_options.seed = 5;
  const ChainInstance instance = GenerateChainInstance(data_options);

  size_t successes = 0;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    InMemoryOracle oracle(instance.data);
    ActiveSolveOptions options;
    options.sampling = ActiveSamplingParams::Practical(0.5, 0.05);
    options.seed = seed;
    options.precomputed_chains = instance.chains;
    const auto result =
        SolveActiveMultiD(instance.data.points(), oracle, options);
    if (CountErrors(result.classifier, instance.data) == 0) ++successes;
  }
  EXPECT_GE(successes, 7u);
}

TEST(MultiDActiveTest, ApproximationGuaranteeOnNoisyChains) {
  ChainInstanceOptions data_options;
  data_options.num_chains = 5;
  data_options.chain_length = 3000;
  data_options.noise_per_chain = 150;
  data_options.seed = 7;
  const ChainInstance instance = GenerateChainInstance(data_options);
  const size_t optimum = OptimalError(instance.data);
  ASSERT_GT(optimum, 0u);

  const double epsilon = 0.5;
  size_t within = 0;
  const int kTrials = 12;
  for (int trial = 0; trial < kTrials; ++trial) {
    InMemoryOracle oracle(instance.data);
    ActiveSolveOptions options;
    options.sampling = ActiveSamplingParams::Practical(epsilon, 0.05);
    options.seed = 1000 + static_cast<uint64_t>(trial);
    options.precomputed_chains = instance.chains;
    const auto result =
        SolveActiveMultiD(instance.data.points(), oracle, options);
    const size_t error = CountErrors(result.classifier, instance.data);
    EXPECT_GE(error, optimum);  // k* is a hard floor
    if (static_cast<double>(error) <=
        (1.0 + epsilon) * static_cast<double>(optimum)) {
      ++within;
    }
  }
  EXPECT_GE(within, 10);
}

TEST(MultiDActiveTest, ProbesSublinearOnLargeInstance) {
  ChainInstanceOptions data_options;
  data_options.num_chains = 8;
  data_options.chain_length = 4096;
  data_options.noise_per_chain = 50;
  data_options.seed = 9;
  const ChainInstance instance = GenerateChainInstance(data_options);
  InMemoryOracle oracle(instance.data);
  ActiveSolveOptions options;
  options.sampling = ActiveSamplingParams::Practical(1.0, 0.1);
  options.precomputed_chains = instance.chains;
  const auto result =
      SolveActiveMultiD(instance.data.points(), oracle, options);
  EXPECT_LT(result.probes, instance.data.size() / 2);
  EXPECT_GT(result.sigma.size(), 0u);
  EXPECT_LE(result.probes, instance.data.size());
}

TEST(MultiDActiveTest, ComputesChainsWhenNotProvided) {
  ChainInstanceOptions data_options;
  data_options.num_chains = 4;
  data_options.chain_length = 50;
  data_options.seed = 11;
  const ChainInstance instance = GenerateChainInstance(data_options);
  InMemoryOracle oracle(instance.data);
  ActiveSolveOptions options;
  options.sampling = ActiveSamplingParams::Practical(0.5, 0.05);
  const auto result =
      SolveActiveMultiD(instance.data.points(), oracle, options);
  EXPECT_EQ(result.num_chains, 4u)
      << "Lemma 6 must recover the planted width";
}

TEST(MultiDActiveTest, Fast2DChainsMatchLemma6Width) {
  ChainInstanceOptions data_options;
  data_options.num_chains = 5;
  data_options.chain_length = 300;
  data_options.noise_per_chain = 10;
  data_options.seed = 23;
  const ChainInstance instance = GenerateChainInstance(data_options);

  InMemoryOracle oracle(instance.data);
  ActiveSolveOptions options;
  options.sampling = ActiveSamplingParams::Practical(0.5, 0.05);
  options.use_fast_2d_chains = true;
  const auto result =
      SolveActiveMultiD(instance.data.points(), oracle, options);
  EXPECT_EQ(result.num_chains, 5u)
      << "the O(n log n) 2D path must find the same minimum chain count";
  EXPECT_GE(CountErrors(result.classifier, instance.data),
            OptimalError(instance.data));
}

TEST(MultiDActiveTest, GreedyChainsUseAtLeastWidthChains) {
  PlantedOptions data_options;
  data_options.num_points = 300;
  data_options.dimension = 2;
  data_options.noise_flips = 10;
  data_options.seed = 13;
  const PlantedInstance instance = GeneratePlanted(data_options);

  InMemoryOracle oracle_min(instance.data);
  ActiveSolveOptions minimum;
  minimum.sampling = ActiveSamplingParams::Practical(0.5, 0.05);
  const auto result_min =
      SolveActiveMultiD(instance.data.points(), oracle_min, minimum);

  InMemoryOracle oracle_greedy(instance.data);
  ActiveSolveOptions greedy = minimum;
  greedy.use_greedy_chains = true;
  const auto result_greedy =
      SolveActiveMultiD(instance.data.points(), oracle_greedy, greedy);

  EXPECT_GE(result_greedy.num_chains, result_min.num_chains);
}

TEST(MultiDActiveTest, RejectsInvalidPrecomputedChains) {
  const LabeledPointSet set = PaperFigure1Points();
  InMemoryOracle oracle(set);
  ActiveSolveOptions options;
  ChainDecomposition bogus;
  bogus.chains = {{0, 1}};  // not a partition of 16 points
  options.precomputed_chains = bogus;
  EXPECT_DEATH(SolveActiveMultiD(set.points(), oracle, options), "");
}

TEST(MultiDActiveTest, DeterministicUnderSeed) {
  ChainInstanceOptions data_options;
  data_options.num_chains = 3;
  data_options.chain_length = 400;
  data_options.noise_per_chain = 20;
  data_options.seed = 17;
  const ChainInstance instance = GenerateChainInstance(data_options);
  ActiveSolveOptions options;
  options.sampling = ActiveSamplingParams::Practical(0.5, 0.05);
  options.seed = 99;
  options.precomputed_chains = instance.chains;

  InMemoryOracle oracle_a(instance.data);
  const auto a = SolveActiveMultiD(instance.data.points(), oracle_a, options);
  InMemoryOracle oracle_b(instance.data);
  const auto b = SolveActiveMultiD(instance.data.points(), oracle_b, options);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.sigma.size(), b.sigma.size());
  EXPECT_EQ(a.classifier.ClassifySet(instance.data.points()),
            b.classifier.ClassifySet(instance.data.points()));
}

TEST(MultiDActiveTest, SigmaLabelsMatchGroundTruth) {
  ChainInstanceOptions data_options;
  data_options.num_chains = 3;
  data_options.chain_length = 200;
  data_options.noise_per_chain = 10;
  data_options.seed = 19;
  const ChainInstance instance = GenerateChainInstance(data_options);
  InMemoryOracle oracle(instance.data);
  ActiveSolveOptions options;
  options.sampling = ActiveSamplingParams::Practical(0.5, 0.05);
  options.precomputed_chains = instance.chains;
  const auto result =
      SolveActiveMultiD(instance.data.points(), oracle, options);
  // Every Sigma entry's label must be the oracle's truth for that point.
  // Match points by coordinates (Sigma stores copies).
  for (size_t i = 0; i < result.sigma.size(); ++i) {
    bool found = false;
    for (size_t j = 0; j < instance.data.size(); ++j) {
      if (instance.data.point(j) == result.sigma.point(i)) {
        EXPECT_EQ(result.sigma.label(i), instance.data.label(j));
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace monoclass
