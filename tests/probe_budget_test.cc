// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Probe-accounting regression tests: the Theorem 2 bound instantiation,
// distinct-vs-call probe counts, the per-chain breakdown, and the
// Theorem 2 sanity check -- measured probes stay within a constant
// factor of the instantiated bound on seeded inputs.

#include "obs/probe_budget.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "active/multi_d.h"
#include "active/oracle.h"
#include "active/params.h"
#include "data/synthetic.h"

namespace monoclass {
namespace obs {
namespace {

TEST(Theorem2BoundTest, MatchesClosedForm) {
  // n = 1024, w = 4, eps = 0.5: (4 / 0.25) * log2(1024) * log2(256)
  //                            = 16 * 10 * 8 = 1280.
  EXPECT_DOUBLE_EQ(ProbeBudget::Theorem2Bound(1024, 4, 0.5), 1280.0);
  // Log factors clamp at 1 for degenerate shapes.
  EXPECT_DOUBLE_EQ(ProbeBudget::Theorem2Bound(1, 1, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ProbeBudget::Theorem2Bound(16, 16, 1.0), 16.0 * 4.0);
}

TEST(Theorem2BoundTest, MonotoneInShapeParameters) {
  // More chains, more points, or smaller eps can only raise the bound.
  EXPECT_LE(ProbeBudget::Theorem2Bound(4096, 4, 0.5),
            ProbeBudget::Theorem2Bound(4096, 8, 0.5));
  EXPECT_LE(ProbeBudget::Theorem2Bound(1024, 4, 0.5),
            ProbeBudget::Theorem2Bound(4096, 4, 0.5));
  EXPECT_LT(ProbeBudget::Theorem2Bound(4096, 4, 0.5),
            ProbeBudget::Theorem2Bound(4096, 4, 0.25));
}

TEST(ProbeBudgetTest, ReportCarriesPerChainBreakdown) {
  ProbeBudget budget(100, 3, 0.5, 0.05);
  budget.RecordChain(0, 10);
  budget.RecordChain(2, 30);
  budget.RecordChain(1, 20);
  budget.RecordTotal(60);
  const ProbeBudgetReport report = budget.Report();
  EXPECT_EQ(report.n, 100u);
  EXPECT_EQ(report.w, 3u);
  ASSERT_EQ(report.per_chain_probes.size(), 3u);
  EXPECT_EQ(report.per_chain_probes[0], 10u);
  EXPECT_EQ(report.per_chain_probes[1], 20u);
  EXPECT_EQ(report.per_chain_probes[2], 30u);
  EXPECT_EQ(report.measured_probes, 60u);
  EXPECT_DOUBLE_EQ(report.utilization, 60.0 / report.theorem2_bound);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(ProbeBudgetTest, InvalidShapesDie) {
  EXPECT_DEATH(ProbeBudget(0, 1, 0.5, 0.1), "");
  EXPECT_DEATH(ProbeBudget(10, 0, 0.5, 0.1), "");
  EXPECT_DEATH(ProbeBudget(10, 11, 0.5, 0.1), "");
  EXPECT_DEATH(ProbeBudget(10, 2, 0.0, 0.1), "");
}

// --- regression: distinct vs call accounting ---------------------------

TEST(ProbeAccountingTest, DistinctVersusCallCounts) {
  PlantedOptions options;
  options.num_points = 50;
  options.seed = 5;
  const PlantedInstance instance = GeneratePlanted(options);
  InMemoryOracle oracle(instance.data);
  // Probe point 7 three times and point 8 once: 4 calls, 2 distinct.
  oracle.Probe(7);
  oracle.Probe(7);
  oracle.Probe(8);
  oracle.Probe(7);
  EXPECT_EQ(oracle.NumProbeCalls(), 4u);
  EXPECT_EQ(oracle.NumProbes(), 2u);
  EXPECT_TRUE(oracle.WasProbed(7));
  EXPECT_FALSE(oracle.WasProbed(9));
}

TEST(ProbeAccountingTest, ActiveRunBudgetMatchesOracle) {
  PlantedOptions options;
  options.num_points = 400;
  options.dimension = 2;
  options.noise_flips = 8;
  options.seed = 23;
  const PlantedInstance instance = GeneratePlanted(options);
  InMemoryOracle oracle(instance.data);
  ActiveSolveOptions solve_options;
  solve_options.sampling = ActiveSamplingParams::Practical(1.0, 0.1);
  const ActiveSolveResult result =
      SolveActiveMultiD(instance.data.points(), oracle, solve_options);

  EXPECT_EQ(result.probes, oracle.NumProbes());
  EXPECT_EQ(result.probe_budget.measured_probes, oracle.NumProbes());
  EXPECT_LE(oracle.NumProbes(), oracle.NumProbeCalls());
  // The per-chain breakdown accounts for every probe: the passive stage
  // adds none, so the chain sum equals the total.
  const size_t chain_sum =
      std::accumulate(result.probe_budget.per_chain_probes.begin(),
                      result.probe_budget.per_chain_probes.end(), size_t{0});
  EXPECT_EQ(chain_sum, result.probes);
}

// --- Theorem 2 sanity ---------------------------------------------------
// On seeded chain instances the measured probe count must stay within a
// constant factor of the instantiated bound. The constant absorbs the
// O(.) the paper hides; what the regression pins is that it does not
// drift with n.
TEST(ProbeAccountingTest, Theorem2SanityOnSeededInputs) {
  constexpr double kConstantFactor = 8.0;
  for (const size_t length : {128u, 512u, 2048u}) {
    ChainInstanceOptions options;
    options.num_chains = 4;
    options.chain_length = length;
    options.noise_per_chain = length / 64;
    options.seed = 97 + length;
    const ChainInstance instance = GenerateChainInstance(options);
    InMemoryOracle oracle(instance.data);
    ActiveSolveOptions solve_options;
    solve_options.sampling = ActiveSamplingParams::Practical(1.0, 0.1);
    solve_options.precomputed_chains = instance.chains;
    const ActiveSolveResult result =
        SolveActiveMultiD(instance.data.points(), oracle, solve_options);
    EXPECT_GT(result.probe_budget.theorem2_bound, 0.0);
    EXPECT_LE(result.probe_budget.utilization, kConstantFactor)
        << "chain length " << length << ": "
        << result.probe_budget.ToString();
    // And probing is genuinely sublinear on the larger instances.
    if (instance.data.size() >= 2048) {
      EXPECT_LT(result.probes, instance.data.size());
    }
  }
}

}  // namespace
}  // namespace obs
}  // namespace monoclass
