// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the Theorem 4 passive solver: hand instances, agreement with
// the exponential brute force on random weighted sets (the central
// correctness property), Lemma 15/16/17 invariants, and all max-flow
// backends giving identical optima.

#include "passive/flow_solver.h"

#include <gtest/gtest.h>

#include "passive/brute_force.h"
#include "test_util.h"
#include "util/random.h"

namespace monoclass {
namespace {

TEST(FlowSolverTest, SinglePointKeepsItsLabel) {
  LabeledPointSet set;
  set.Add(Point{1, 1}, 1);
  const auto result = SolvePassiveUnweighted(set);
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 0.0);
  EXPECT_TRUE(result.classifier.Classify(Point{1, 1}));
}

TEST(FlowSolverTest, AlreadyMonotoneLabelsHaveZeroError) {
  LabeledPointSet set;
  set.Add(Point{0, 0}, 0);
  set.Add(Point{1, 1}, 0);
  set.Add(Point{2, 2}, 1);
  set.Add(Point{3, 3}, 1);
  const auto result = SolvePassiveUnweighted(set);
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 0.0);
  EXPECT_EQ(result.num_contending, 0u);
}

TEST(FlowSolverTest, SingleInversionCostsCheaperSide) {
  WeightedPointSet set;
  set.Add(Point{0, 0}, 1, 5.0);  // label 1 below
  set.Add(Point{1, 1}, 0, 2.0);  // label 0 above
  const auto result = SolvePassiveWeighted(set);
  // Optimal: misclassify the weight-2 point (map both to 1).
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 2.0);
  EXPECT_EQ(result.assignment[0], 1);
  EXPECT_EQ(result.assignment[1], 1);
}

TEST(FlowSolverTest, SingleInversionOtherDirection) {
  WeightedPointSet set;
  set.Add(Point{0, 0}, 1, 2.0);
  set.Add(Point{1, 1}, 0, 5.0);
  const auto result = SolvePassiveWeighted(set);
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 2.0);
  EXPECT_EQ(result.assignment[0], 0);
  EXPECT_EQ(result.assignment[1], 0);
}

TEST(FlowSolverTest, EqualPointsWithConflictingLabels) {
  // Duplicates must receive one common value; the cheaper side loses.
  WeightedPointSet set;
  set.Add(Point{1, 1}, 1, 3.0);
  set.Add(Point{1, 1}, 0, 1.0);
  const auto result = SolvePassiveWeighted(set);
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 1.0);
  EXPECT_EQ(result.assignment[0], 1);
  EXPECT_EQ(result.assignment[1], 1);
}

TEST(FlowSolverTest, IncomparablePointsNeverConflict) {
  LabeledPointSet set;
  set.Add(Point{0, 1}, 1);
  set.Add(Point{1, 0}, 0);
  const auto result = SolvePassiveUnweighted(set);
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 0.0);
}

TEST(FlowSolverTest, ZigZag1DInstance) {
  // 1D labels 1,0,1,0 at 1,2,3,4: every threshold errs at least twice
  // (all-1 errs on 2 and 4; tau=2 errs on 1 and 4; all-0 errs on 1 and 3),
  // so k* = 2.
  LabeledPointSet set;
  set.Add(Point{1}, 1);
  set.Add(Point{2}, 0);
  set.Add(Point{3}, 1);
  set.Add(Point{4}, 0);
  EXPECT_EQ(OptimalError(set), 2u);
}

TEST(FlowSolverTest, MatchesBruteForceOnRandomUnweightedSets) {
  Rng rng(41);
  for (int trial = 0; trial < 80; ++trial) {
    const size_t n = 1 + rng.UniformInt(12);
    const size_t d = 1 + rng.UniformInt(3);
    const auto set = testing_util::RandomLabeledSet(
        rng, n, d, rng.UniformDoubleInRange(0.2, 0.8));
    const auto flow = SolvePassiveUnweighted(set);
    const auto brute =
        SolvePassiveBruteForce(WeightedPointSet::UnitWeights(set));
    EXPECT_DOUBLE_EQ(flow.optimal_weighted_error,
                     brute.optimal_weighted_error)
        << "trial " << trial;
  }
}

TEST(FlowSolverTest, MatchesBruteForceOnRandomWeightedSets) {
  Rng rng(43);
  for (int trial = 0; trial < 80; ++trial) {
    const size_t n = 1 + rng.UniformInt(12);
    const size_t d = 1 + rng.UniformInt(3);
    const auto set = testing_util::RandomWeightedSet(
        rng, n, d, rng.UniformDoubleInRange(0.2, 0.8));
    const auto flow = SolvePassiveWeighted(set);
    const auto brute = SolvePassiveBruteForce(set);
    EXPECT_NEAR(flow.optimal_weighted_error, brute.optimal_weighted_error,
                1e-9)
        << "trial " << trial;
  }
}

TEST(FlowSolverTest, GridOfDuplicatesMatchesBruteForce) {
  // Heavy duplicate / tie structure from a tiny integer grid.
  Rng rng(47);
  for (int trial = 0; trial < 40; ++trial) {
    WeightedPointSet set;
    const size_t n = 2 + rng.UniformInt(10);
    for (size_t i = 0; i < n; ++i) {
      set.Add(Point{static_cast<double>(rng.UniformInt(3)),
                    static_cast<double>(rng.UniformInt(3))},
              rng.Bernoulli(0.5) ? 1 : 0,
              static_cast<double>(1 + rng.UniformInt(4)));
    }
    EXPECT_NEAR(SolvePassiveWeighted(set).optimal_weighted_error,
                SolvePassiveBruteForce(set).optimal_weighted_error, 1e-9)
        << "trial " << trial;
  }
}

TEST(FlowSolverTest, AssignmentIsMonotoneAndMatchesClassifier) {
  Rng rng(53);
  for (int trial = 0; trial < 30; ++trial) {
    const auto set = testing_util::RandomWeightedSet(rng, 20, 2);
    const auto result = SolvePassiveWeighted(set);
    EXPECT_TRUE(IsMonotoneAssignment(set.points(), result.assignment));
    EXPECT_EQ(result.classifier.ClassifySet(set.points()),
              result.assignment);
  }
}

TEST(FlowSolverTest, AllBackendsAgree) {
  Rng rng(59);
  for (int trial = 0; trial < 20; ++trial) {
    const auto set = testing_util::RandomWeightedSet(rng, 25, 3);
    double reference = -1.0;
    for (const auto algorithm : AllMaxFlowAlgorithms()) {
      PassiveSolveOptions options;
      options.algorithm = algorithm;
      const double error =
          SolvePassiveWeighted(set, options).optimal_weighted_error;
      if (reference < 0) {
        reference = error;
      } else {
        EXPECT_NEAR(error, reference, 1e-9) << "trial " << trial;
      }
    }
  }
}

TEST(FlowSolverTest, ContendingReductionIsTransparent) {
  Rng rng(61);
  for (int trial = 0; trial < 30; ++trial) {
    const auto set = testing_util::RandomWeightedSet(rng, 18, 2);
    PassiveSolveOptions with;
    with.reduce_to_contending = true;
    PassiveSolveOptions without;
    without.reduce_to_contending = false;
    EXPECT_NEAR(SolvePassiveWeighted(set, with).optimal_weighted_error,
                SolvePassiveWeighted(set, without).optimal_weighted_error,
                1e-9)
        << "Lemma 15, trial " << trial;
  }
}

TEST(FlowSolverTest, ErrorNeverBelowContendingHalf) {
  // Sanity: k* = 0 iff no contending points.
  Rng rng(67);
  for (int trial = 0; trial < 30; ++trial) {
    const auto set = testing_util::RandomLabeledSet(rng, 15, 2);
    const auto result = SolvePassiveUnweighted(set);
    if (result.num_contending == 0) {
      EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 0.0);
    } else {
      EXPECT_GT(result.optimal_weighted_error, 0.0);
    }
  }
}

TEST(FlowSolverTest, OptimalErrorOfEmptySetIsZero) {
  EXPECT_EQ(OptimalError(LabeledPointSet()), 0u);
}

TEST(FlowSolverTest, AutoThresholdBoundaryAtDefault1024) {
  // One label-1 point at the origin plus (k - 1) label-0 antichain
  // points that all dominate it: exactly k contending points, so the
  // kAuto route flips from dense to sparse precisely when k reaches
  // PassiveSolveOptions{}.sparse_auto_threshold (default 1024). kDense
  // and kSparseChainRelay must ignore the threshold entirely, and all
  // three builds must agree on the optimum.
  for (const size_t k : {size_t{1023}, size_t{1024}, size_t{1025}}) {
    WeightedPointSet set;
    set.Add(Point{0.0, 0.0}, 1, 1.0);
    for (size_t i = 0; i + 1 < k; ++i) {
      set.Add(Point{static_cast<double>(i + 1),
                    static_cast<double>(k - i)},
              0, 1.0);
    }
    PassiveSolveOptions auto_build;
    auto_build.network = PassiveNetworkBuild::kAuto;
    const auto with_auto = SolvePassiveWeighted(set, auto_build);
    EXPECT_EQ(with_auto.num_contending, k) << "k=" << k;
    EXPECT_EQ(with_auto.used_sparse_network,
              k >= auto_build.sparse_auto_threshold)
        << "k=" << k;

    PassiveSolveOptions dense;
    dense.network = PassiveNetworkBuild::kDense;
    const auto with_dense = SolvePassiveWeighted(set, dense);
    EXPECT_FALSE(with_dense.used_sparse_network) << "k=" << k;

    PassiveSolveOptions sparse;
    sparse.network = PassiveNetworkBuild::kSparseChainRelay;
    const auto with_sparse = SolvePassiveWeighted(set, sparse);
    EXPECT_TRUE(with_sparse.used_sparse_network) << "k=" << k;

    // The lone label-1 point loses to the antichain above it.
    EXPECT_DOUBLE_EQ(with_auto.optimal_weighted_error, 1.0);
    EXPECT_EQ(with_dense.assignment, with_auto.assignment);
    EXPECT_EQ(with_sparse.assignment, with_auto.assignment);
  }
}

TEST(FlowSolverTest, HigherDimensions) {
  Rng rng(71);
  for (const size_t d : {4u, 6u, 8u}) {
    const auto set = testing_util::RandomLabeledSet(rng, 14, d);
    EXPECT_DOUBLE_EQ(
        SolvePassiveUnweighted(set).optimal_weighted_error,
        static_cast<double>(OptimalErrorBruteForce(set)));
  }
}

}  // namespace
}  // namespace monoclass
