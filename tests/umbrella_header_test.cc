// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Verifies the umbrella header is self-contained and exposes the whole
// public API: one translation unit that touches every module through
// "monoclass.h" alone.

#include "monoclass.h"

#include <sstream>

#include <gtest/gtest.h>

namespace monoclass {
namespace {

TEST(UmbrellaHeaderTest, EndToEndThroughSingleInclude) {
  // data -> passive -> metrics -> io, all through the umbrella header.
  EntityMatchingOptions options;
  options.num_pairs = 120;
  options.seed = 4;
  const EntityMatchingInstance instance = GenerateEntityMatching(options);

  const PassiveSolveResult solved = SolvePassiveUnweighted(instance.data);
  const ConfusionMatrix matrix =
      EvaluateClassifier(solved.classifier, instance.data);
  EXPECT_EQ(static_cast<double>(matrix.Errors()),
            solved.optimal_weighted_error);

  std::stringstream stream;
  WriteClassifier(solved.classifier, stream);
  const auto loaded = ReadClassifier(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(EquivalentOn(*loaded, solved.classifier,
                           instance.data.points()));
}

TEST(UmbrellaHeaderTest, ActiveApiReachable) {
  const LabeledPointSet set = PaperFigure1Points();
  InMemoryOracle oracle(set);
  const ActiveSolveResult result =
      SolveActiveMultiD(set.points(), oracle, ActiveSolveOptions{});
  EXPECT_EQ(result.num_chains, DominanceWidth(set.points()));
}

TEST(UmbrellaHeaderTest, GraphSubstrateReachable) {
  FlowNetwork network(3);
  network.AddEdge(0, 1, 2.0);
  network.AddEdge(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(
      CreateMaxFlowSolver(MaxFlowAlgorithm::kDinic)->Solve(network, 0, 2),
      1.0);
}

}  // namespace
}  // namespace monoclass
