// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Robustness and degenerate-input tests: extreme weights, extreme
// coordinates, all-identical points, single-class inputs, NaN rejection.
// These are the inputs that break numerics or hidden assumptions.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "active/multi_d.h"
#include "active/oracle.h"
#include "core/antichain.h"
#include "passive/brute_force.h"
#include "passive/flow_solver.h"
#include "util/random.h"

namespace monoclass {
namespace {

TEST(RobustnessTest, NanCoordinatesAreRejected) {
  PointSet points;
  EXPECT_DEATH(points.Add(Point{std::nan(""), 1.0}), "finite");
}

TEST(RobustnessTest, InfiniteCoordinatesAreRejected) {
  PointSet points;
  EXPECT_DEATH(
      points.Add(Point{std::numeric_limits<double>::infinity(), 1.0}),
      "finite");
}

TEST(RobustnessTest, ExtremeWeightSpread) {
  // Weights spanning 14 orders of magnitude: the flow solver's
  // effective-infinity and tolerance logic must not confuse them.
  WeightedPointSet set;
  set.Add(Point{0, 0}, 1, 1e-6);   // tiny inverted positive below...
  set.Add(Point{1, 1}, 0, 1e8);    // ...a huge negative
  const auto result = SolvePassiveWeighted(set);
  EXPECT_NEAR(result.optimal_weighted_error, 1e-6, 1e-12);
  EXPECT_EQ(result.assignment[0], 0);
  EXPECT_EQ(result.assignment[1], 0);
}

TEST(RobustnessTest, ExtremeWeightsMatchBruteForce) {
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    WeightedPointSet set;
    const size_t n = 2 + rng.UniformInt(10);
    for (size_t i = 0; i < n; ++i) {
      const double magnitude =
          std::pow(10.0, rng.UniformDoubleInRange(-6.0, 6.0));
      set.Add(Point{rng.UniformDouble(), rng.UniformDouble()},
              rng.Bernoulli(0.5) ? 1 : 0, magnitude);
    }
    const double flow = SolvePassiveWeighted(set).optimal_weighted_error;
    const double brute =
        SolvePassiveBruteForce(set).optimal_weighted_error;
    // Relative tolerance: magnitudes differ wildly across trials.
    EXPECT_NEAR(flow, brute, 1e-9 * std::max(1.0, brute))
        << "trial " << trial;
  }
}

TEST(RobustnessTest, HugeCoordinates) {
  LabeledPointSet set;
  set.Add(Point{-1e300, -1e300}, 0);
  set.Add(Point{1e300, 1e300}, 1);
  set.Add(Point{0, 0}, 0);
  EXPECT_EQ(OptimalError(set), 0u);
  EXPECT_EQ(DominanceWidth(set.points()), 1u);
}

TEST(RobustnessTest, AllPointsIdentical) {
  // Every point equal: a classifier must give them one value; the
  // optimum is the lighter label class.
  LabeledPointSet set;
  for (int i = 0; i < 10; ++i) {
    set.Add(Point{1, 2}, i < 3 ? 1 : 0);
  }
  EXPECT_EQ(OptimalError(set), 3u);
  EXPECT_EQ(DominanceWidth(set.points()), 1u);
}

TEST(RobustnessTest, SingleClassAllPositive) {
  LabeledPointSet set;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    set.Add(Point{rng.UniformDouble(), rng.UniformDouble()}, 1);
  }
  const auto result = SolvePassiveUnweighted(set);
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 0.0);
  for (size_t i = 0; i < set.size(); ++i) {
    EXPECT_TRUE(result.classifier.Classify(set.point(i)));
  }
}

TEST(RobustnessTest, SingleClassAllNegative) {
  LabeledPointSet set;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    set.Add(Point{rng.UniformDouble(), rng.UniformDouble()}, 0);
  }
  const auto result = SolvePassiveUnweighted(set);
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 0.0);
  EXPECT_TRUE(result.classifier.IsAlwaysZero());
}

TEST(RobustnessTest, ActiveSolverOnSinglePoint) {
  LabeledPointSet set;
  set.Add(Point{1, 1}, 1);
  InMemoryOracle oracle(set);
  ActiveSolveOptions options;
  const auto result = SolveActiveMultiD(set.points(), oracle, options);
  EXPECT_EQ(result.probes, 1u);
  EXPECT_EQ(CountErrors(result.classifier, set), 0u);
}

TEST(RobustnessTest, ActiveSolverOnAntichain) {
  // Pure antichain: every point is its own chain; the solver must probe
  // everything (each chain of size 1) and be exact.
  LabeledPointSet set;
  Rng rng(11);
  for (int i = 0; i < 40; ++i) {
    set.Add(Point{static_cast<double>(i), static_cast<double>(40 - i)},
            rng.Bernoulli(0.5) ? 1 : 0);
  }
  InMemoryOracle oracle(set);
  ActiveSolveOptions options;
  const auto result = SolveActiveMultiD(set.points(), oracle, options);
  EXPECT_EQ(result.num_chains, 40u);
  EXPECT_EQ(result.probes, 40u);
  EXPECT_EQ(CountErrors(result.classifier, set), 0u);
}

TEST(RobustnessTest, DenormalWeightsSurviveTheSolver) {
  WeightedPointSet set;
  set.Add(Point{0, 0}, 1, 1e-308);
  set.Add(Point{1, 1}, 0, 1.0);
  const auto result = SolvePassiveWeighted(set);
  // The denormal-weight error should be preferred.
  EXPECT_LE(result.optimal_weighted_error, 1e-300);
}

TEST(RobustnessTest, AdjacentCoordinatesDistinguished) {
  // Coordinates one ulp apart must still order correctly everywhere.
  const double base = 1.0;
  const double next =
      std::nextafter(base, std::numeric_limits<double>::infinity());
  LabeledPointSet set;
  set.Add(Point{base}, 0);
  set.Add(Point{next}, 1);
  EXPECT_EQ(OptimalError(set), 0u);
  const auto result = SolvePassiveUnweighted(set);
  EXPECT_FALSE(result.classifier.Classify(Point{base}));
  EXPECT_TRUE(result.classifier.Classify(Point{next}));
}

TEST(RobustnessTest, WidthOfLongChainPlusOneOutlier) {
  PointSet points;
  for (int i = 0; i < 100; ++i) {
    points.Add(Point{static_cast<double>(i), static_cast<double>(i)});
  }
  points.Add(Point{-1.0, 1000.0});  // incomparable with most of the chain
  EXPECT_EQ(DominanceWidth(points), 2u);
}

}  // namespace
}  // namespace monoclass
