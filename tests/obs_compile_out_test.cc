// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Proves the MC_* macros are fully inert when compiled out: this TU
// defines MONOCLASS_OBS_DISABLE before any include, which turns off
// MC_OBS_COMPILED exactly like building with -DMONOCLASS_OBS=OFF does
// globally, so the expansion below is the compiled-out one. Macro
// arguments must not be evaluated (no side effects) and nothing may
// reach the metrics registry or the trace buffer even when the runtime
// switch is on.

#define MONOCLASS_OBS_DISABLE 1

#include "obs/obs.h"

#include <gtest/gtest.h>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace monoclass {
namespace obs {
namespace {

static_assert(MC_OBS_COMPILED == 0,
              "MONOCLASS_OBS_DISABLE must compile the obs macros out");

TEST(ObsCompileOutTest, MacroArgumentsNotEvaluated) {
  SetEnabled(true);
  int evaluations = 0;
  auto bump = [&evaluations] { return ++evaluations; };
  MC_COUNTER("compile_out.counter", bump());
  MC_GAUGE("compile_out.gauge", bump());
  MC_HISTOGRAM("compile_out.histogram", bump());
  MC_OBS(bump());
  (void)bump;
  EXPECT_EQ(evaluations, 0);
  SetEnabled(false);
}

TEST(ObsCompileOutTest, NothingReachesTheRegistry) {
  SetEnabled(true);
  MC_COUNTER("compile_out.registry_probe", 1);
  MC_LATENCY("mc.lat.compile_out_probe");
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.Find("compile_out.registry_probe"), nullptr);
  EXPECT_EQ(snapshot.Find("mc.lat.compile_out_probe"), nullptr);
  SetEnabled(false);
}

TEST(ObsCompileOutTest, LatencyScopeRecordsNothing) {
  // MC_LATENCY compiled out must not create a scope object, register a
  // histogram, or feed the flight recorder.
  SetEnabled(true);
  StartFlightRecording();
  {
    MC_LATENCY("mc.lat.compile_out_scope");
  }
  StopFlightRecording();
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.Find("mc.lat.compile_out_scope"), nullptr);
  const FlightSnapshot flight = SnapshotFlight();
  for (const FlightEvent& event : flight.events) {
    ASSERT_LT(event.name_id, flight.names.size());
    EXPECT_NE(flight.names[event.name_id], "mc.lat.compile_out_scope");
  }
  ResetFlightRecorder();
  SetEnabled(false);
}

TEST(ObsCompileOutTest, SpansRecordNothing) {
  SetEnabled(true);
  StartTracing();
  {
    MC_SPAN("compile_out.span");
    MC_SPAN("compile_out.nested");
  }
  StopTracing();
  EXPECT_TRUE(TraceSnapshot().empty());
  ClearTrace();
  SetEnabled(false);
}

TEST(ObsCompileOutTest, MacrosAreSingleStatements) {
  // The compiled-out forms must still parse as one statement so they are
  // safe inside unbraced if/else (the do-while(0) contract).
  if (true)
    MC_COUNTER("compile_out.if", 1);
  else
    MC_GAUGE("compile_out.else", 2);
  SUCCEED();
}

}  // namespace
}  // namespace obs
}  // namespace monoclass
