// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the incremental threshold-error index, cross-checked against
// the offline exact solver after every activation (the defining
// property: the index answers the same question as Solve1DWeighted over
// the active observations).

#include "passive/threshold_index.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "passive/isotonic_1d.h"
#include "util/random.h"

namespace monoclass {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ThresholdIndexTest, EmptyIndexHasZeroError) {
  const ThresholdErrorIndex index({1.0, 2.0, 3.0});
  const auto best = index.BestThreshold();
  EXPECT_DOUBLE_EQ(best.error, 0.0);
  EXPECT_EQ(index.NumThresholds(), 4u);  // -inf, 1, 2, 3
}

TEST(ThresholdIndexTest, SinglePositiveObservation) {
  ThresholdErrorIndex index({1.0, 2.0, 3.0});
  index.Activate(2.0, 1, 5.0);
  // err(-inf) = 0 (classified 1, correct); err(tau >= 2) = 5.
  EXPECT_DOUBLE_EQ(index.ErrorAt(-kInf), 0.0);
  EXPECT_DOUBLE_EQ(index.ErrorAt(1.0), 0.0);
  EXPECT_DOUBLE_EQ(index.ErrorAt(2.0), 5.0);
  EXPECT_DOUBLE_EQ(index.ErrorAt(3.0), 5.0);
  EXPECT_DOUBLE_EQ(index.BestThreshold().error, 0.0);
}

TEST(ThresholdIndexTest, SingleNegativeObservation) {
  ThresholdErrorIndex index({1.0, 2.0, 3.0});
  index.Activate(2.0, 0, 4.0);
  // Classified 1 (wrong) by every tau < 2.
  EXPECT_DOUBLE_EQ(index.ErrorAt(-kInf), 4.0);
  EXPECT_DOUBLE_EQ(index.ErrorAt(1.0), 4.0);
  EXPECT_DOUBLE_EQ(index.ErrorAt(2.0), 0.0);
  EXPECT_DOUBLE_EQ(index.BestThreshold().error, 0.0);
  EXPECT_DOUBLE_EQ(index.BestThreshold().tau, 2.0);
}

TEST(ThresholdIndexTest, DuplicateCandidatesCollapse) {
  const ThresholdErrorIndex index({1.0, 1.0, 2.0, 2.0});
  EXPECT_EQ(index.NumThresholds(), 3u);
}

TEST(ThresholdIndexTest, ActivateUnknownValueAborts) {
  ThresholdErrorIndex index({1.0, 2.0});
  EXPECT_DEATH(index.Activate(1.5, 1, 1.0), "");
}

TEST(ThresholdIndexTest, MatchesOfflineSolverIncrementally) {
  Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    // Candidate grid with ties; activate observations one by one.
    const size_t num_values = 1 + rng.UniformInt(20);
    std::vector<double> candidates(num_values);
    for (auto& v : candidates) {
      v = static_cast<double>(rng.UniformInt(12));
    }
    ThresholdErrorIndex index(candidates);
    std::vector<Weighted1DPoint> active;
    const size_t activations = 1 + rng.UniformInt(40);
    for (size_t step = 0; step < activations; ++step) {
      const double value =
          candidates[static_cast<size_t>(rng.UniformInt(candidates.size()))];
      const Label label = rng.Bernoulli(0.5) ? 1 : 0;
      const double weight = rng.UniformDoubleInRange(0.5, 3.0);
      index.Activate(value, label, weight);
      active.push_back(Weighted1DPoint{value, label, weight});

      const auto expected = Solve1DWeighted(active);
      const auto got = index.BestThreshold();
      ASSERT_NEAR(got.error, expected.optimal_weighted_error, 1e-9)
          << "trial " << trial << " step " << step;
    }
  }
}

TEST(ThresholdIndexTest, ErrorAtMatchesDirectComputation) {
  Rng rng(37);
  std::vector<double> candidates;
  for (int i = 0; i < 15; ++i) {
    candidates.push_back(static_cast<double>(i));
  }
  ThresholdErrorIndex index(candidates);
  std::vector<Weighted1DPoint> active;
  for (int step = 0; step < 60; ++step) {
    const double value = static_cast<double>(rng.UniformInt(15));
    const Label label = rng.Bernoulli(0.4) ? 1 : 0;
    const double weight = rng.UniformDoubleInRange(0.1, 2.0);
    index.Activate(value, label, weight);
    active.push_back(Weighted1DPoint{value, label, weight});
  }
  for (double tau : {-kInf, 0.0, 3.0, 7.0, 14.0}) {
    double direct = 0.0;
    for (const auto& p : active) {
      const bool predicted = p.value > tau;
      if (predicted != (p.label == 1)) direct += p.weight;
    }
    EXPECT_NEAR(index.ErrorAt(tau), direct, 1e-9) << "tau " << tau;
  }
}

TEST(ThresholdIndexTest, BestTauAchievesItsReportedError) {
  Rng rng(41);
  std::vector<double> candidates;
  for (int i = 0; i < 25; ++i) {
    candidates.push_back(rng.UniformDouble());
  }
  ThresholdErrorIndex index(candidates);
  for (int step = 0; step < 80; ++step) {
    const double value =
        candidates[static_cast<size_t>(rng.UniformInt(candidates.size()))];
    index.Activate(value, rng.Bernoulli(0.5) ? 1 : 0,
                   rng.UniformDoubleInRange(0.5, 2.0));
  }
  const auto best = index.BestThreshold();
  EXPECT_NEAR(index.ErrorAt(best.tau), best.error, 1e-9);
  EXPECT_EQ(index.NumActive(), 80u);
}

TEST(ThresholdIndexTest, LargeIndexStaysFast) {
  // 10^5 candidates, 10^5 activations: must finish well inside the test
  // budget (the point of the O(log n) structure).
  Rng rng(43);
  std::vector<double> candidates(100000);
  for (size_t i = 0; i < candidates.size(); ++i) {
    candidates[i] = static_cast<double>(i);
  }
  ThresholdErrorIndex index(candidates);
  for (int step = 0; step < 100000; ++step) {
    index.Activate(static_cast<double>(rng.UniformInt(100000)),
                   rng.Bernoulli(0.5) ? 1 : 0, 1.0);
  }
  const auto best = index.BestThreshold();
  EXPECT_GE(best.error, 0.0);
  EXPECT_LE(best.error, 100000.0);
}

}  // namespace
}  // namespace monoclass
