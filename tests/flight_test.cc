// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Flight recorder (obs/flight.h): ring wraparound keeps the newest
// events, concurrent writers stay decodable (the per-slot seqlock is
// what tsan exercises here), the binary dump round-trips, and the
// Chrome-trace conversion produces a validator-clean event stream.

#include "obs/flight.h"

#include <gtest/gtest.h>

#include "util/sync_model.h"
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "util/concurrency.h"
#include "util/json.h"

namespace monoclass {
namespace obs {
namespace {

class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StopFlightRecording();
    ResetFlightRecorder();
  }
  void TearDown() override {
    StopFlightRecording();
    ResetFlightRecorder();
    SetEnabled(false);
  }
};

// Events recorded under `name_id`, in snapshot (time) order.
std::vector<FlightEvent> EventsNamed(const FlightSnapshot& snapshot,
                                     uint32_t name_id) {
  std::vector<FlightEvent> out;
  for (const FlightEvent& event : snapshot.events) {
    if (event.name_id == name_id) out.push_back(event);
  }
  return out;
}

TEST_F(FlightTest, RecordsNothingWhileInactive) {
  const uint32_t name = InternFlightName("flight_test.inactive");
  RecordFlightEvent(FlightEventType::kCounter, name, 1.0);
  const FlightSnapshot snapshot = SnapshotFlight();
  EXPECT_TRUE(EventsNamed(snapshot, name).empty());
}

TEST_F(FlightTest, RecordsTypedEventsInTimeOrder) {
  StartFlightRecording();
  const uint32_t begin = InternFlightName("flight_test.span");
  const uint32_t counter = InternFlightName("flight_test.count");
  RecordFlightEvent(FlightEventType::kSpanBegin, begin, 0.0);
  RecordFlightEvent(FlightEventType::kCounter, counter, 7.0);
  RecordFlightEvent(FlightEventType::kSpanEnd, begin, 12.5);
  StopFlightRecording();

  const FlightSnapshot snapshot = SnapshotFlight();
  EXPECT_EQ(snapshot.torn, 0u);
  ASSERT_GE(snapshot.names.size(), 2u);
  const auto spans = EventsNamed(snapshot, begin);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].type, FlightEventType::kSpanBegin);
  EXPECT_EQ(spans[1].type, FlightEventType::kSpanEnd);
  EXPECT_DOUBLE_EQ(spans[1].value, 12.5);
  EXPECT_LE(spans[0].ts_us, spans[1].ts_us);
  const auto counts = EventsNamed(snapshot, counter);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_DOUBLE_EQ(counts[0].value, 7.0);
  EXPECT_EQ(snapshot.names[counts[0].name_id], "flight_test.count");
}

TEST_F(FlightTest, WraparoundKeepsTheNewestEvents) {
  StartFlightRecording();
  const uint32_t name = InternFlightName("flight_test.wrap");
  constexpr size_t kExtra = 100;
  constexpr size_t kTotal = internal::kFlightRingSlots + kExtra;
  for (size_t i = 0; i < kTotal; ++i) {
    RecordFlightEvent(FlightEventType::kCounter, name,
                      static_cast<double>(i));
  }
  StopFlightRecording();

  const FlightSnapshot snapshot = SnapshotFlight();
  const auto events = EventsNamed(snapshot, name);
  ASSERT_EQ(events.size(), internal::kFlightRingSlots);
  EXPECT_EQ(snapshot.overwritten, kExtra);
  EXPECT_EQ(snapshot.torn, 0u);
  // The survivors must be exactly the newest kFlightRingSlots values,
  // still in write order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].value, static_cast<double>(kExtra + i));
  }
}

TEST_F(FlightTest, EightConcurrentWritersStayDecodable) {
  StartFlightRecording();
  constexpr size_t kWriters = 8;
  constexpr size_t kEventsPerWriter = 20000;  // > ring: forces wraparound
  std::vector<uint32_t> names;
  for (size_t w = 0; w < kWriters; ++w) {
    names.push_back(
        InternFlightName(("flight_test.writer" + std::to_string(w)).c_str()));
  }
  // Rendezvous before writing so each task lands on its own worker
  // thread (own ring): a worker that ran two tasks would overwrite the
  // first task's events entirely.
  mc::atomic<size_t> arrived{0};
  {
    ThreadPool pool(kWriters);
    for (size_t w = 0; w < kWriters; ++w) {
      pool.Submit([w, &names, &arrived] {
        arrived.fetch_add(1);
        while (arrived.load() < kWriters) {
        }
        for (size_t i = 0; i < kEventsPerWriter; ++i) {
          RecordFlightEvent(FlightEventType::kCounter, names[w],
                            static_cast<double>(i));
        }
      });
    }
    // Snapshot while writers are running: consistency, not completeness,
    // is the contract -- every surfaced event must still decode.
    for (int probe = 0; probe < 5; ++probe) {
      const FlightSnapshot live = SnapshotFlight();
      for (const FlightEvent& event : live.events) {
        ASSERT_LT(event.name_id, live.names.size());
        ASSERT_LE(static_cast<int>(event.type),
                  static_cast<int>(FlightEventType::kPoolTask));
      }
    }
  }  // pool drains + joins
  StopFlightRecording();

  const FlightSnapshot snapshot = SnapshotFlight();
  EXPECT_EQ(snapshot.torn, 0u);  // writers quiesced: no torn slots
  std::set<uint32_t> tids;
  for (size_t w = 0; w < kWriters; ++w) {
    const auto events = EventsNamed(snapshot, names[w]);
    ASSERT_FALSE(events.empty()) << "writer " << w;
    // Each writer's surviving tail is contiguous and in order.
    for (size_t i = 1; i < events.size(); ++i) {
      EXPECT_DOUBLE_EQ(events[i].value, events[i - 1].value + 1.0);
    }
    EXPECT_DOUBLE_EQ(events.back().value,
                     static_cast<double>(kEventsPerWriter - 1));
    tids.insert(events.front().tid);
  }
  EXPECT_EQ(tids.size(), kWriters);
}

TEST_F(FlightTest, BinaryDumpRoundTrips) {
  StartFlightRecording();
  const uint32_t span = InternFlightName("flight_test.dump_span");
  const uint32_t counter = InternFlightName("flight_test.dump_count");
  RecordFlightEvent(FlightEventType::kSpanBegin, span, 0.0);
  RecordFlightEvent(FlightEventType::kCounter, counter, 3.0);
  RecordFlightEvent(FlightEventType::kSpanEnd, span, 9.0);
  StopFlightRecording();
  const FlightSnapshot original = SnapshotFlight();

  std::stringstream stream;
  WriteFlightDump(original, stream);
  FlightSnapshot decoded;
  std::string error;
  ASSERT_TRUE(ReadFlightDump(stream, &decoded, &error)) << error;
  EXPECT_EQ(decoded.names, original.names);
  EXPECT_EQ(decoded.overwritten, original.overwritten);
  EXPECT_EQ(decoded.torn, original.torn);
  ASSERT_EQ(decoded.events.size(), original.events.size());
  for (size_t i = 0; i < decoded.events.size(); ++i) {
    EXPECT_EQ(decoded.events[i].tid, original.events[i].tid);
    EXPECT_EQ(decoded.events[i].name_id, original.events[i].name_id);
    EXPECT_EQ(decoded.events[i].type, original.events[i].type);
    EXPECT_DOUBLE_EQ(decoded.events[i].ts_us, original.events[i].ts_us);
    EXPECT_DOUBLE_EQ(decoded.events[i].value, original.events[i].value);
  }
}

TEST_F(FlightTest, MalformedDumpsAreRejected) {
  FlightSnapshot decoded;
  std::string error;
  {
    std::stringstream bad_magic("NOTFLIGHTDATA");
    EXPECT_FALSE(ReadFlightDump(bad_magic, &decoded, &error));
    EXPECT_FALSE(error.empty());
  }
  {
    // Valid prefix, then truncation mid-stream.
    StartFlightRecording();
    RecordFlightEvent(FlightEventType::kCounter,
                      InternFlightName("flight_test.trunc"), 1.0);
    StopFlightRecording();
    std::stringstream stream;
    WriteFlightDump(SnapshotFlight(), stream);
    const std::string whole = stream.str();
    std::stringstream truncated(whole.substr(0, whole.size() / 2));
    EXPECT_FALSE(ReadFlightDump(truncated, &decoded, &error));
    EXPECT_FALSE(error.empty());
  }
}

TEST_F(FlightTest, ChromeTraceIsWellFormed) {
  StartFlightRecording();
  const uint32_t outer = InternFlightName("flight_test.outer");
  const uint32_t inner = InternFlightName("flight_test.inner");
  const uint32_t count = InternFlightName("flight_test.trace_count");
  const uint32_t orphan = InternFlightName("flight_test.orphan");
  RecordFlightEvent(FlightEventType::kSpanBegin, outer, 0.0);
  RecordFlightEvent(FlightEventType::kSpanBegin, inner, 0.0);
  RecordFlightEvent(FlightEventType::kCounter, count, 2.0);
  RecordFlightEvent(FlightEventType::kSpanEnd, inner, 1.0);
  RecordFlightEvent(FlightEventType::kSpanEnd, outer, 2.0);
  // An end whose begin was lost to wraparound must be dropped, and a
  // begin with no end must be synthetically closed.
  RecordFlightEvent(FlightEventType::kSpanEnd, orphan, 1.0);
  RecordFlightEvent(FlightEventType::kSpanBegin, orphan, 0.0);
  StopFlightRecording();

  std::stringstream trace;
  WriteFlightChromeTrace(SnapshotFlight(), trace);
  std::string error;
  const auto root = JsonValue::Parse(trace.str(), &error);
  ASSERT_TRUE(root.has_value()) << error;
  const JsonValue* events = root->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  size_t complete = 0, counters = 0;
  double last_ts = 0.0;
  std::set<std::string> names;
  for (const JsonValue& event : events->AsArray()) {
    ASSERT_TRUE(event.is_object());
    const std::string ph = event.Find("ph")->AsString();
    const double ts = event.Find("ts")->AsNumber();
    names.insert(event.Find("name")->AsString());
    EXPECT_GE(ts, last_ts);  // single-tid stream: globally sorted
    last_ts = ts;
    if (ph == "X") {
      ++complete;
      EXPECT_GE(event.Find("dur")->AsNumber(), 0.0);
    } else if (ph == "C") {
      ++counters;
      EXPECT_DOUBLE_EQ(event.Find("args")->Find("value")->AsNumber(), 2.0);
    }
  }
  // outer + inner + the synthetically closed orphan begin = 3 X events;
  // the orphan *end* contributes nothing.
  EXPECT_EQ(complete, 3u);
  EXPECT_EQ(counters, 1u);
  EXPECT_TRUE(names.count("flight_test.outer"));
  EXPECT_TRUE(names.count("flight_test.inner"));
  EXPECT_TRUE(names.count("flight_test.orphan"));
}

#if MC_OBS_COMPILED
TEST_F(FlightTest, SpansAndLatencyScopesFeedTheRecorder) {
  SetEnabled(true);
  StartFlightRecording();
  {
    MC_SPAN("flight_test/macro_span");
    MC_LATENCY("mc.lat.flight_test_scope");
  }
  MC_COUNTER("flight_test.macro_counter", 5);
  StopFlightRecording();

  const FlightSnapshot snapshot = SnapshotFlight();
  std::set<std::string> seen;
  int span_pairs = 0;
  for (const FlightEvent& event : snapshot.events) {
    ASSERT_LT(event.name_id, snapshot.names.size());
    const std::string& name = snapshot.names[event.name_id];
    seen.insert(name);
    if (name == "flight_test/macro_span" &&
        event.type == FlightEventType::kSpanEnd) {
      ++span_pairs;
    }
    if (name == "flight_test.macro_counter") {
      EXPECT_EQ(event.type, FlightEventType::kCounter);
      EXPECT_DOUBLE_EQ(event.value, 5.0);
    }
  }
  EXPECT_TRUE(seen.count("flight_test/macro_span"));
  EXPECT_TRUE(seen.count("mc.lat.flight_test_scope"));
  EXPECT_TRUE(seen.count("flight_test.macro_counter"));
  EXPECT_EQ(span_pairs, 1);
}
#endif  // MC_OBS_COMPILED

}  // namespace
}  // namespace obs
}  // namespace monoclass
