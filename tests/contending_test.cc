// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the Lemma 15 contending-point computation.

#include "passive/contending.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace monoclass {
namespace {

TEST(ContendingTest, MonotoneLabelsHaveNoContending) {
  const PointSet points({Point{0, 0}, Point{1, 1}, Point{2, 2}});
  const auto partition = ComputeContending(points, {0, 0, 1});
  EXPECT_TRUE(partition.contending.empty());
}

TEST(ContendingTest, InversionMakesBothContending) {
  const PointSet points({Point{0, 0}, Point{1, 1}});
  const auto partition = ComputeContending(points, {1, 0});
  EXPECT_EQ(partition.contending, (std::vector<size_t>{0, 1}));
}

TEST(ContendingTest, IncomparableOppositeLabelsNotContending) {
  const PointSet points({Point{0, 1}, Point{1, 0}});
  const auto partition = ComputeContending(points, {1, 0});
  EXPECT_TRUE(partition.contending.empty());
}

TEST(ContendingTest, EqualPointsOppositeLabelsAreContending) {
  const PointSet points({Point{1, 1}, Point{1, 1}});
  const auto partition = ComputeContending(points, {0, 1});
  EXPECT_EQ(partition.contending, (std::vector<size_t>{0, 1}));
}

TEST(ContendingTest, ChainReactionDoesNotOverreach) {
  // 0 <= 1 <= 2 with labels 1, 0, 1: point 2 dominates the label-0 point 1
  // but that does not make point 2 contending (it needs a label-0 point
  // ABOVE it); point 0 is below label-0 point 1 -> contending; point 1
  // dominates label-1 point 0 -> contending.
  const PointSet points({Point{0, 0}, Point{1, 1}, Point{2, 2}});
  const auto partition = ComputeContending(points, {1, 0, 1});
  EXPECT_EQ(partition.contending, (std::vector<size_t>{0, 1}));
  EXPECT_FALSE(partition.is_contending[2]);
}

TEST(ContendingTest, FlagsMatchIndexList) {
  Rng rng(83);
  for (int trial = 0; trial < 30; ++trial) {
    const auto set = testing_util::RandomLabeledSet(rng, 25, 2);
    const auto partition = ComputeContending(set.points(), set.labels());
    size_t flagged = 0;
    for (size_t i = 0; i < set.size(); ++i) {
      if (partition.is_contending[i]) ++flagged;
    }
    EXPECT_EQ(flagged, partition.contending.size());
    for (const size_t i : partition.contending) {
      EXPECT_TRUE(partition.is_contending[i]);
    }
  }
}

TEST(ContendingTest, DefinitionAuditOnRandomSets) {
  // Re-derive contending status point by point from the definition.
  Rng rng(89);
  for (int trial = 0; trial < 30; ++trial) {
    const auto set = testing_util::RandomLabeledSet(rng, 20, 3);
    const auto partition = ComputeContending(set.points(), set.labels());
    for (size_t i = 0; i < set.size(); ++i) {
      bool expected = false;
      for (size_t j = 0; j < set.size() && !expected; ++j) {
        if (i == j || set.label(i) == set.label(j)) continue;
        if (set.label(i) == 0) {
          expected = DominatesEq(set.point(i), set.point(j));
        } else {
          expected = DominatesEq(set.point(j), set.point(i));
        }
      }
      EXPECT_EQ(partition.is_contending[i], expected)
          << "point " << i << ", trial " << trial;
    }
  }
}

}  // namespace
}  // namespace monoclass
