// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.

#include "core/metrics.h"

#include <gtest/gtest.h>

namespace monoclass {
namespace {

TEST(ConfusionMatrixTest, EmptyMatrix) {
  const ConfusionMatrix matrix;
  EXPECT_EQ(matrix.Total(), 0u);
  EXPECT_DOUBLE_EQ(matrix.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(matrix.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(matrix.F1(), 0.0);
  EXPECT_DOUBLE_EQ(matrix.Accuracy(), 0.0);
}

TEST(ConfusionMatrixTest, PerfectClassifier) {
  const ConfusionMatrix matrix{.true_positive = 10, .true_negative = 20};
  EXPECT_DOUBLE_EQ(matrix.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(matrix.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(matrix.F1(), 1.0);
  EXPECT_DOUBLE_EQ(matrix.Accuracy(), 1.0);
  EXPECT_EQ(matrix.Errors(), 0u);
}

TEST(ConfusionMatrixTest, KnownValues) {
  const ConfusionMatrix matrix{.true_positive = 6,
                               .false_positive = 2,
                               .true_negative = 10,
                               .false_negative = 2};
  EXPECT_DOUBLE_EQ(matrix.Precision(), 0.75);
  EXPECT_DOUBLE_EQ(matrix.Recall(), 0.75);
  EXPECT_DOUBLE_EQ(matrix.F1(), 0.75);
  EXPECT_DOUBLE_EQ(matrix.Accuracy(), 0.8);
  EXPECT_EQ(matrix.Errors(), 4u);
}

TEST(ConfusionMatrixTest, AllNegativePredictions) {
  const ConfusionMatrix matrix{.true_negative = 5, .false_negative = 5};
  EXPECT_DOUBLE_EQ(matrix.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(matrix.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(matrix.F1(), 0.0);
  EXPECT_DOUBLE_EQ(matrix.Accuracy(), 0.5);
}

TEST(EvaluateClassifierTest, CountsEveryCell) {
  LabeledPointSet set;
  set.Add(Point{0}, 0);  // predicted 0 -> tn
  set.Add(Point{1}, 1);  // predicted 0 -> fn
  set.Add(Point{2}, 0);  // predicted 1 -> fp
  set.Add(Point{3}, 1);  // predicted 1 -> tp
  const auto h = MonotoneClassifier::Threshold1D(1.5);
  const ConfusionMatrix matrix = EvaluateClassifier(h, set);
  EXPECT_EQ(matrix.true_negative, 1u);
  EXPECT_EQ(matrix.false_negative, 1u);
  EXPECT_EQ(matrix.false_positive, 1u);
  EXPECT_EQ(matrix.true_positive, 1u);
  EXPECT_EQ(matrix.Errors(), CountErrors(h, set));
}

TEST(EvaluateClassifierTest, ErrorsAgreeWithCountErrors) {
  LabeledPointSet set;
  for (int i = 0; i < 20; ++i) {
    set.Add(Point{static_cast<double>(i)}, i % 3 == 0 ? 1 : 0);
  }
  const auto h = MonotoneClassifier::Threshold1D(9.5);
  EXPECT_EQ(EvaluateClassifier(h, set).Errors(), CountErrors(h, set));
}

TEST(ConfusionMatrixTest, ToStringContainsCounts) {
  const ConfusionMatrix matrix{.true_positive = 3, .false_positive = 1};
  const std::string text = matrix.ToString();
  EXPECT_NE(text.find("tp=3"), std::string::npos);
  EXPECT_NE(text.find("fp=1"), std::string::npos);
}

}  // namespace
}  // namespace monoclass
