// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for Lemma 6 (minimum chain decomposition) and the greedy ablation:
// validity invariants, exact chain counts on structured instances, and the
// Dilworth identity chains == width on random instances.

#include "core/chain_decomposition.h"

#include <gtest/gtest.h>

#include "core/antichain.h"
#include "data/synthetic.h"
#include "test_util.h"
#include "util/random.h"

namespace monoclass {
namespace {

TEST(MinimumChainDecompositionTest, EmptySet) {
  EXPECT_EQ(MinimumChainDecomposition(PointSet()).NumChains(), 0u);
}

TEST(MinimumChainDecompositionTest, SinglePoint) {
  const PointSet points({Point{1, 1}});
  const auto decomposition = MinimumChainDecomposition(points);
  EXPECT_EQ(decomposition.NumChains(), 1u);
  EXPECT_TRUE(ValidateChainDecomposition(points, decomposition));
}

TEST(MinimumChainDecompositionTest, TotalOrderIsOneChain) {
  const PointSet points({Point{3, 3}, Point{1, 1}, Point{2, 2}, Point{4, 4}});
  const auto decomposition = MinimumChainDecomposition(points);
  EXPECT_EQ(decomposition.NumChains(), 1u);
  EXPECT_TRUE(ValidateChainDecomposition(points, decomposition));
  // The single chain must ascend: indices ordered 1, 2, 0, 3.
  EXPECT_EQ(decomposition.chains[0],
            (std::vector<size_t>{1, 2, 0, 3}));
}

TEST(MinimumChainDecompositionTest, AntichainIsAllSingletons) {
  const PointSet points({Point{0, 3}, Point{1, 2}, Point{2, 1}, Point{3, 0}});
  const auto decomposition = MinimumChainDecomposition(points);
  EXPECT_EQ(decomposition.NumChains(), 4u);
  EXPECT_TRUE(ValidateChainDecomposition(points, decomposition));
}

TEST(MinimumChainDecompositionTest, DuplicatePointsFormAChain) {
  const PointSet points({Point{1, 1}, Point{1, 1}, Point{1, 1}});
  const auto decomposition = MinimumChainDecomposition(points);
  EXPECT_EQ(decomposition.NumChains(), 1u);
  EXPECT_TRUE(ValidateChainDecomposition(points, decomposition));
}

TEST(MinimumChainDecompositionTest, OneDimensionAlwaysOneChain) {
  Rng rng(5);
  PointSet points;
  for (int i = 0; i < 50; ++i) points.Add(Point{rng.UniformDouble()});
  const auto decomposition = MinimumChainDecomposition(points);
  EXPECT_EQ(decomposition.NumChains(), 1u);
  EXPECT_TRUE(ValidateChainDecomposition(points, decomposition));
}

TEST(MinimumChainDecompositionTest, MatchesDominanceWidthOnRandomSets) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 1 + rng.UniformInt(40);
    const size_t d = 1 + rng.UniformInt(3);
    const auto set = testing_util::RandomLabeledSet(rng, n, d);
    const auto decomposition = MinimumChainDecomposition(set.points());
    EXPECT_TRUE(ValidateChainDecomposition(set.points(), decomposition));
    EXPECT_EQ(decomposition.NumChains(), DominanceWidth(set.points()))
        << "Dilworth: minimum chains == width, trial " << trial;
  }
}

TEST(MinimumChainDecompositionTest, ChainInstanceRecoversPlantedWidth) {
  for (const size_t w : {1u, 2u, 5u, 9u}) {
    ChainInstanceOptions options;
    options.num_chains = w;
    options.chain_length = 12;
    options.seed = 3 * w + 1;
    const ChainInstance instance = GenerateChainInstance(options);
    const auto decomposition =
        MinimumChainDecomposition(instance.data.points());
    EXPECT_EQ(decomposition.NumChains(), w);
    EXPECT_TRUE(
        ValidateChainDecomposition(instance.data.points(), decomposition));
  }
}

TEST(GreedyChainDecompositionTest, AlwaysValid) {
  Rng rng(13);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 1 + rng.UniformInt(40);
    const size_t d = 1 + rng.UniformInt(3);
    const auto set = testing_util::RandomLabeledSet(rng, n, d);
    const auto decomposition = GreedyChainDecomposition(set.points());
    EXPECT_TRUE(ValidateChainDecomposition(set.points(), decomposition));
  }
}

TEST(GreedyChainDecompositionTest, NeverFewerThanWidth) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const auto set = testing_util::RandomLabeledSet(rng, 30, 2);
    const auto greedy = GreedyChainDecomposition(set.points());
    EXPECT_GE(greedy.NumChains(), DominanceWidth(set.points()));
  }
}

TEST(GreedyChainDecompositionTest, OptimalInOneDimension) {
  Rng rng(19);
  PointSet points;
  for (int i = 0; i < 40; ++i) points.Add(Point{rng.UniformDouble()});
  EXPECT_EQ(GreedyChainDecomposition(points).NumChains(), 1u);
}

TEST(ValidateChainDecompositionTest, RejectsBadDecompositions) {
  const PointSet points({Point{0, 0}, Point{1, 1}});
  // Missing point.
  EXPECT_FALSE(ValidateChainDecomposition(points, {{{0}}}));
  // Duplicated point.
  EXPECT_FALSE(ValidateChainDecomposition(points, {{{0, 1}, {1}}}));
  // Wrong order within chain.
  EXPECT_FALSE(ValidateChainDecomposition(points, {{{1, 0}}}));
  // Empty chain.
  EXPECT_FALSE(ValidateChainDecomposition(points, {{{0, 1}, {}}}));
  // Correct.
  EXPECT_TRUE(ValidateChainDecomposition(points, {{{0, 1}}}));
}

}  // namespace
}  // namespace monoclass
