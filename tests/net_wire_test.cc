// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Frame and wire codec tests: round-trips for every message type, the
// incremental frame decoder's three-way contract (frame / need-more /
// WireError), and the adversarial inputs the decoder must reject
// without crashing or over-allocating (truncation, bad magic, version
// skew, oversized lengths, checksum corruption, hostile counts).

#include "net/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "net/frame.h"
#include "test_util.h"

namespace monoclass {
namespace net {
namespace {

PointSet SmallPoints() {
  PointSet points;
  points.Add(Point{0.0, 1.0});
  points.Add(Point{1.0, 0.0});
  points.Add(Point{2.0, 2.0});
  return points;
}

// ---------------------------------------------------------------- streams

TEST(WireStreamTest, ScalarRoundTrip) {
  WireStream s;
  s.WriteU8(7);
  s.WriteU16(0xBEEF);
  s.WriteU32(0xDEADBEEF);
  s.WriteU64(0x0123456789ABCDEFull);
  s.WriteF64(-2.5);
  s.WriteString("hello");
  EXPECT_EQ(s.ReadU8(), 7u);
  EXPECT_EQ(s.ReadU16(), 0xBEEFu);
  EXPECT_EQ(s.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(s.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(s.ReadF64(), -2.5);
  EXPECT_EQ(s.ReadString(), "hello");
  EXPECT_TRUE(s.AtEnd());
  EXPECT_NO_THROW(s.ExpectEnd());
}

TEST(WireStreamTest, LittleEndianLayout) {
  WireStream s;
  s.WriteU32(0x04030201u);
  ASSERT_EQ(s.bytes().size(), 4u);
  EXPECT_EQ(s.bytes()[0], 0x01);
  EXPECT_EQ(s.bytes()[3], 0x04);
}

TEST(WireStreamTest, ReadPastEndThrows) {
  WireStream s;
  s.WriteU16(1);
  s.ReadU8();
  s.ReadU8();
  EXPECT_THROW(s.ReadU8(), WireError);
}

TEST(WireStreamTest, TrailingGarbageThrows) {
  WireStream s;
  s.WriteU16(1);
  s.ReadU8();
  EXPECT_THROW(s.ExpectEnd(), WireError);
}

TEST(WireStreamTest, HostileCountCannotDriveAllocation) {
  // A u32 count of 2^24 elements with no bytes behind it must be
  // rejected by ReadCount before any allocation.
  WireStream s;
  s.WriteU32(kMaxWireElements);
  EXPECT_THROW(s.ReadCount(8), WireError);
}

TEST(WireStreamTest, OversizedStringRejected) {
  WireStream s;
  s.WriteU32(kMaxWireStringBytes + 1);
  EXPECT_THROW(s.ReadString(), WireError);
}

TEST(WireVectorTest, RoundTrips) {
  WireStream s;
  WriteU8Vector(s, {0, 1, 1, 0});
  WriteU64Vector(s, {42, 0, ~0ull});
  WriteF64Vector(s, {0.5, -1.25});
  EXPECT_EQ(ReadU8Vector(s), (std::vector<uint8_t>{0, 1, 1, 0}));
  EXPECT_EQ(ReadU64Vector(s), (std::vector<uint64_t>{42, 0, ~0ull}));
  EXPECT_EQ(ReadF64Vector(s), (std::vector<double>{0.5, -1.25}));
  EXPECT_TRUE(s.AtEnd());
}

TEST(WirePointSetTest, RoundTrip) {
  const PointSet points = SmallPoints();
  WireStream s;
  WritePointSet(s, points);
  const PointSet decoded = ReadPointSet(s);
  ASSERT_EQ(decoded.size(), points.size());
  ASSERT_EQ(decoded.dimension(), points.dimension());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(decoded[i], points[i]);
  }
}

TEST(WirePointSetTest, NonFiniteCoordinateRejected) {
  PointSet points;
  points.Add(Point{1.0});
  WireStream s;
  WritePointSet(s, points);
  // Patch the single coordinate to NaN in the encoded bytes.
  std::vector<uint8_t> bytes = s.TakeBytes();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(bytes.data() + bytes.size() - 8, &nan, 8);
  WireStream corrupted(bytes);
  EXPECT_THROW(ReadPointSet(corrupted), WireError);
}

TEST(WireClassifierTest, RoundTripsIncludingSentinels) {
  // AlwaysOne's generator is -infinity^d: the classifier codec must
  // accept infinities (only NaN is malformed).
  for (const MonotoneClassifier& classifier :
       {MonotoneClassifier::AlwaysZero(3), MonotoneClassifier::AlwaysOne(3),
        MonotoneClassifier::FromGenerators({Point{1.0, 2.0}, Point{2.0, 1.0}},
                                           2)}) {
    WireStream s;
    WriteClassifier(s, classifier);
    const MonotoneClassifier decoded = ReadClassifier(s);
    EXPECT_EQ(decoded.dimension(), classifier.dimension());
    EXPECT_EQ(decoded.generators(), classifier.generators());
  }
}

// --------------------------------------------------------------- messages

TEST(WireMessageTest, PassiveSolveRequestRoundTrip) {
  PassiveSolveRequest request;
  request.points = SmallPoints();
  request.labels = {1, 0, 1};
  request.weights = {1.0, 2.0, 0.5};
  request.reduce_to_contending = 0;
  WireStream s;
  request.Serialize(s);
  const PassiveSolveRequest decoded = PassiveSolveRequest::Unserialize(s);
  s.ExpectEnd();
  EXPECT_EQ(decoded.labels, request.labels);
  EXPECT_EQ(decoded.weights, request.weights);
  EXPECT_EQ(decoded.reduce_to_contending, 0);
  EXPECT_EQ(decoded.points.size(), 3u);
}

TEST(WireMessageTest, PassiveSolveRequestRejectsBadLabel) {
  PassiveSolveRequest request;
  request.points = SmallPoints();
  request.labels = {1, 2, 0};  // 2 is not a label
  WireStream s;
  request.Serialize(s);
  EXPECT_THROW(PassiveSolveRequest::Unserialize(s), WireError);
}

TEST(WireMessageTest, SessionMessagesRoundTrip) {
  SessionOpenRequest open;
  open.points = SmallPoints();
  open.seed = 99;
  open.epsilon = 0.25;
  open.delta = 0.125;
  WireStream s1;
  open.Serialize(s1);
  const SessionOpenRequest open2 = SessionOpenRequest::Unserialize(s1);
  EXPECT_EQ(open2.seed, 99u);
  EXPECT_EQ(open2.epsilon, 0.25);

  SessionStepRequest step;
  step.session_id = 5;
  step.indices = {2, 0};
  step.labels = {1, 0};
  WireStream s2;
  step.Serialize(s2);
  const SessionStepRequest step2 = SessionStepRequest::Unserialize(s2);
  EXPECT_EQ(step2.session_id, 5u);
  EXPECT_EQ(step2.indices, step.indices);
  EXPECT_EQ(step2.labels, step.labels);

  SessionResultMessage result;
  result.session_id = 5;
  result.classifier = MonotoneClassifier::AlwaysOne(2);
  result.probes = 17;
  result.num_chains = 3;
  result.sigma_error = 1.5;
  WireStream s3;
  result.Serialize(s3);
  const SessionResultMessage result2 = SessionResultMessage::Unserialize(s3);
  EXPECT_EQ(result2.probes, 17u);
  EXPECT_EQ(result2.classifier.generators(), result.classifier.generators());
}

TEST(WireMessageTest, StepRequestRejectsMismatchedArrays) {
  // Serialize refuses to encode the mismatch...
  SessionStepRequest step;
  step.indices = {1, 2};
  step.labels = {1};
  WireStream refused;
  EXPECT_THROW(step.Serialize(refused), WireError);

  // ...and Unserialize rejects a hand-encoded one.
  WireStream s;
  s.WriteU64(5);                 // session_id
  WriteU64Vector(s, {1, 2});     // two indices
  WriteU8Vector(s, {1});         // one label
  EXPECT_THROW(SessionStepRequest::Unserialize(s), WireError);
}

TEST(WireMessageTest, StatsResponseRoundTrip) {
  StatsResponse stats;
  stats.counters.emplace_back("mc.srv.requests", 12u);
  stats.counters.emplace_back("mc.srv.frames_rx", 13u);
  WireStream s;
  stats.Serialize(s);
  const StatsResponse decoded = StatsResponse::Unserialize(s);
  ASSERT_EQ(decoded.counters.size(), 2u);
  EXPECT_EQ(decoded.counters[0].first, "mc.srv.requests");
  EXPECT_EQ(decoded.counters[1].second, 13u);
}

// ----------------------------------------------------------------- frames

Frame MakePing(uint64_t nonce, uint64_t request_id) {
  PingMessage ping;
  ping.nonce = nonce;
  WireStream s;
  ping.Serialize(s);
  Frame frame;
  frame.type = static_cast<uint16_t>(MessageType::kPing);
  frame.request_id = request_id;
  frame.payload = s.bytes();
  return frame;
}

TEST(FrameTest, EncodeDecodeRoundTrip) {
  const Frame frame = MakePing(0xABCDEF, 42);
  const std::vector<uint8_t> encoded = EncodeFrame(frame);
  EXPECT_EQ(encoded.size(), kFrameOverheadBytes + frame.payload.size());
  size_t consumed = 0;
  const std::optional<Frame> decoded = TryDecodeFrame(encoded, &consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(consumed, encoded.size());
  EXPECT_EQ(decoded->type, frame.type);
  EXPECT_EQ(decoded->request_id, 42u);
  EXPECT_EQ(decoded->payload, frame.payload);
}

TEST(FrameTest, EveryTruncationAsksForMoreBytes) {
  const std::vector<uint8_t> encoded = EncodeFrame(MakePing(7, 1));
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    const std::vector<uint8_t> prefix(encoded.begin(),
                                      encoded.begin() + cut);
    size_t consumed = 99;
    const std::optional<Frame> decoded = TryDecodeFrame(prefix, &consumed);
    EXPECT_FALSE(decoded.has_value()) << "cut=" << cut;
    EXPECT_EQ(consumed, 0u) << "cut=" << cut;
  }
}

TEST(FrameTest, BadMagicThrowsEvenOnShortPrefix) {
  std::vector<uint8_t> bytes = {0x4D, 0x43, 0x58};  // "MCX..."
  size_t consumed = 0;
  EXPECT_THROW(TryDecodeFrame(bytes, &consumed), WireError);
}

TEST(FrameTest, VersionSkewMustError) {
  std::vector<uint8_t> encoded = EncodeFrame(MakePing(7, 1));
  encoded[4] = 2;  // version 2 does not exist
  size_t consumed = 0;
  EXPECT_THROW(TryDecodeFrame(encoded, &consumed), WireError);
}

TEST(FrameTest, UnknownTypeRejected) {
  std::vector<uint8_t> encoded = EncodeFrame(MakePing(7, 1));
  encoded[6] = 0xFF;
  encoded[7] = 0xFF;
  size_t consumed = 0;
  EXPECT_THROW(TryDecodeFrame(encoded, &consumed), WireError);
}

TEST(FrameTest, OversizedLengthRejectedBeforeAllocation) {
  std::vector<uint8_t> encoded = EncodeFrame(MakePing(7, 1));
  // Patch payload_len to just over the cap. The decoder must throw from
  // the header alone, without waiting for (or allocating) 64 MiB.
  const uint32_t huge = kMaxFramePayloadBytes + 1;
  std::memcpy(encoded.data() + 16, &huge, 4);
  encoded.resize(kFrameHeaderBytes);
  size_t consumed = 0;
  EXPECT_THROW(TryDecodeFrame(encoded, &consumed), WireError);
}

TEST(FrameTest, ChecksumCorruptionDetected) {
  std::vector<uint8_t> encoded = EncodeFrame(MakePing(7, 1));
  encoded[kFrameHeaderBytes] ^= 0x01;  // flip one payload bit
  size_t consumed = 0;
  EXPECT_THROW(TryDecodeFrame(encoded, &consumed), WireError);
}

TEST(FrameTest, DecodesFirstFrameOfConcatenation) {
  const std::vector<uint8_t> first = EncodeFrame(MakePing(1, 10));
  const std::vector<uint8_t> second = EncodeFrame(MakePing(2, 11));
  std::vector<uint8_t> both = first;
  both.insert(both.end(), second.begin(), second.end());
  size_t consumed = 0;
  const std::optional<Frame> decoded = TryDecodeFrame(both, &consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(consumed, first.size());
  EXPECT_EQ(decoded->request_id, 10u);
}

TEST(FrameTest, EncodeRejectsOversizedPayload) {
  Frame frame;
  frame.type = static_cast<uint16_t>(MessageType::kPing);
  // Don't actually allocate 64 MiB+: size() is what EncodeFrame checks,
  // so a small vector resized past the cap would be expensive; instead
  // check the boundary just above via a real (one-time) allocation.
  frame.payload.resize(kMaxFramePayloadBytes + 1);
  EXPECT_THROW(EncodeFrame(frame), WireError);
}

TEST(FrameTest, Crc32KnownAnswer) {
  // CRC-32("123456789") = 0xCBF43926 -- the IEEE 802.3 check value.
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(data, sizeof(data)), 0xCBF43926u);
}

}  // namespace
}  // namespace net
}  // namespace monoclass
