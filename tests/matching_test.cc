// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for Hopcroft-Karp and Kuhn bipartite matching and the Koenig
// vertex-cover construction. The two matching algorithms cross-check each
// other on random graphs; Koenig covers are validated against the
// |cover| = |matching| identity and edge coverage.

#include "graph/matching.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace monoclass {
namespace {

using testing_util::IsValidMatching;
using testing_util::IsValidVertexCover;
using testing_util::RandomBipartite;

TEST(HopcroftKarpTest, EmptyGraph) {
  const BipartiteGraph graph(0, 0);
  EXPECT_EQ(HopcroftKarpMatching(graph).size, 0);
}

TEST(HopcroftKarpTest, NoEdges) {
  const BipartiteGraph graph(3, 4);
  const Matching matching = HopcroftKarpMatching(graph);
  EXPECT_EQ(matching.size, 0);
  EXPECT_TRUE(IsValidMatching(graph, matching));
}

TEST(HopcroftKarpTest, SingleEdge) {
  BipartiteGraph graph(2, 2);
  graph.AddEdge(0, 1);
  const Matching matching = HopcroftKarpMatching(graph);
  EXPECT_EQ(matching.size, 1);
  EXPECT_EQ(matching.left_to_right[0], 1);
  EXPECT_EQ(matching.right_to_left[1], 0);
}

TEST(HopcroftKarpTest, PerfectMatchingOnCycle) {
  // 4-cycle as bipartite graph: perfect matching exists.
  BipartiteGraph graph(2, 2);
  graph.AddEdge(0, 0);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 0);
  graph.AddEdge(1, 1);
  EXPECT_EQ(HopcroftKarpMatching(graph).size, 2);
}

TEST(HopcroftKarpTest, RequiresAugmentingPath) {
  // Greedy matching 0-0 blocks the perfect matching unless augmented.
  BipartiteGraph graph(2, 2);
  graph.AddEdge(0, 0);
  graph.AddEdge(1, 0);
  graph.AddEdge(0, 1);
  const Matching matching = HopcroftKarpMatching(graph);
  EXPECT_EQ(matching.size, 2);
  EXPECT_TRUE(IsValidMatching(graph, matching));
}

TEST(HopcroftKarpTest, StarGraphMatchesOne) {
  BipartiteGraph graph(5, 1);
  for (int l = 0; l < 5; ++l) graph.AddEdge(l, 0);
  EXPECT_EQ(HopcroftKarpMatching(graph).size, 1);
}

TEST(HopcroftKarpTest, CompleteBipartiteMatchesMinSide) {
  BipartiteGraph graph(4, 7);
  for (int l = 0; l < 4; ++l) {
    for (int r = 0; r < 7; ++r) graph.AddEdge(l, r);
  }
  EXPECT_EQ(HopcroftKarpMatching(graph).size, 4);
}

TEST(KuhnTest, AgreesOnHandInstance) {
  BipartiteGraph graph(3, 3);
  graph.AddEdge(0, 0);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 0);
  graph.AddEdge(2, 2);
  const Matching kuhn = KuhnMatching(graph);
  EXPECT_EQ(kuhn.size, 3);
  EXPECT_TRUE(IsValidMatching(graph, kuhn));
}

// Property: the two independent algorithms report the same maximum size
// and both produce structurally valid matchings.
TEST(MatchingPropertyTest, HopcroftKarpAgreesWithKuhn) {
  Rng rng(2024);
  for (int trial = 0; trial < 120; ++trial) {
    const int nl = 1 + static_cast<int>(rng.UniformInt(12));
    const int nr = 1 + static_cast<int>(rng.UniformInt(12));
    const double p = rng.UniformDoubleInRange(0.05, 0.9);
    const BipartiteGraph graph = RandomBipartite(rng, nl, nr, p);
    const Matching hk = HopcroftKarpMatching(graph);
    const Matching kuhn = KuhnMatching(graph);
    EXPECT_TRUE(IsValidMatching(graph, hk)) << "trial " << trial;
    EXPECT_TRUE(IsValidMatching(graph, kuhn)) << "trial " << trial;
    EXPECT_EQ(hk.size, kuhn.size) << "trial " << trial;
  }
}

TEST(KonigTest, CoverSizeEqualsMatchingSize) {
  Rng rng(99);
  for (int trial = 0; trial < 120; ++trial) {
    const int nl = 1 + static_cast<int>(rng.UniformInt(12));
    const int nr = 1 + static_cast<int>(rng.UniformInt(12));
    const BipartiteGraph graph =
        RandomBipartite(rng, nl, nr, rng.UniformDoubleInRange(0.05, 0.9));
    const Matching matching = HopcroftKarpMatching(graph);
    const VertexCover cover = KonigVertexCover(graph, matching);
    EXPECT_EQ(cover.size, matching.size) << "Koenig's theorem, trial "
                                         << trial;
    EXPECT_TRUE(IsValidVertexCover(graph, cover.left, cover.right))
        << "trial " << trial;
  }
}

TEST(KonigTest, EmptyGraphCoverIsEmpty) {
  const BipartiteGraph graph(3, 3);
  const Matching matching = HopcroftKarpMatching(graph);
  const VertexCover cover = KonigVertexCover(graph, matching);
  EXPECT_EQ(cover.size, 0);
}

TEST(KonigTest, SingleEdgeCoveredByOneVertex) {
  BipartiteGraph graph(1, 1);
  graph.AddEdge(0, 0);
  const VertexCover cover =
      KonigVertexCover(graph, HopcroftKarpMatching(graph));
  EXPECT_EQ(cover.size, 1);
  EXPECT_TRUE(IsValidVertexCover(graph, cover.left, cover.right));
}

}  // namespace
}  // namespace monoclass
