// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Shared main() for the mc_model scenario drivers. Each driver
// registers named scenarios (a body plus default exploration options)
// and delegates to RunScenarioMain, which provides a common CLI:
//
//   --scenario=NAME        which scenario to run (default "good")
//   --replay=TOKEN         replay one schedule from a violation token
//   --max-executions=N     override Options::max_executions
//   --max-steps=N          override Options::max_steps
//   --preemption-bound=N   override Options::preemption_bound
//   --list                 print scenario names and exit
//
// Exit status is 0 when the exploration finishes without a violation
// and 1 when the checker finds one, so CMake's WILL_FAIL turns the
// seeded-bug scenarios into negative tests. On a violation the full
// report (message + replay token) goes to stdout, and when the
// MC_MODEL_TOKEN_DIR environment variable names a directory the token
// is also written to <dir>/<scenario>.token so CI can archive it.

#ifndef MONOCLASS_TESTS_MODEL_SCENARIO_HARNESS_H_
#define MONOCLASS_TESTS_MODEL_SCENARIO_HARNESS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <string>

#include "model/scheduler.h"

namespace monoclass {
namespace model_test {

struct ScenarioSpec {
  model::Options options;
  std::function<void()> body;
};

inline bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *value = arg + len;
  return true;
}

inline int RunScenarioMain(int argc, char** argv,
                           const std::map<std::string, ScenarioSpec>& specs) {
  std::string scenario = "good";
  std::string replay;
  std::string value;
  long long max_executions = -1;
  long long max_steps = -1;
  long long preemption_bound = -1000;  // sentinel: not set
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--scenario=", &value)) {
      scenario = value;
    } else if (ParseFlag(argv[i], "--replay=", &value)) {
      replay = value;
    } else if (ParseFlag(argv[i], "--max-executions=", &value)) {
      max_executions = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "--max-steps=", &value)) {
      max_steps = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "--preemption-bound=", &value)) {
      preemption_bound = std::atoll(value.c_str());
    } else if (std::strcmp(argv[i], "--list") == 0) {
      for (const auto& [name, spec] : specs) std::printf("%s\n", name.c_str());
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  const auto it = specs.find(scenario);
  if (it == specs.end()) {
    std::fprintf(stderr, "unknown scenario '%s' (--list to enumerate)\n",
                 scenario.c_str());
    return 2;
  }

  model::Options options = it->second.options;
  if (max_executions >= 0) {
    options.max_executions = static_cast<uint64_t>(max_executions);
  }
  if (max_steps >= 0) options.max_steps = static_cast<uint64_t>(max_steps);
  if (preemption_bound != -1000) {
    options.preemption_bound = static_cast<int>(preemption_bound);
  }
  options.replay_token = replay;

  const model::Result result = model::Explore(options, it->second.body);

  if (result.violation) {
    std::printf("model[%s]: VIOLATION after %llu execution(s)\n",
                scenario.c_str(),
                static_cast<unsigned long long>(result.executions));
    std::printf("%s\n", result.message.c_str());
    std::printf("replay: %s\n", result.token.c_str());
    const char* token_dir = std::getenv("MC_MODEL_TOKEN_DIR");
    if (token_dir != nullptr && token_dir[0] != '\0') {
      const std::string path = std::string(token_dir) + "/" + scenario + ".token";
      std::ofstream out(path);
      out << result.token << "\n";
    }
    return 1;
  }

  std::printf("model[%s]: OK -- %llu interleaving(s) explored, %s, %llu truncated\n",
              scenario.c_str(),
              static_cast<unsigned long long>(result.executions),
              result.complete ? "schedule tree exhausted" : "bounded",
              static_cast<unsigned long long>(result.truncated));
  return 0;
}

}  // namespace model_test
}  // namespace monoclass

#endif  // MONOCLASS_TESTS_MODEL_SCENARIO_HARNESS_H_
