// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// mc_model scenarios for ThreadPool shutdown semantics
// (src/util/concurrency.cc): the destructor sets shutdown_ under the
// mutex, wakes every worker, and workers drain the remaining queue
// before exiting -- so tasks enqueued before ~ThreadPool must run on
// every schedule, including those where the worker never woke between
// Submit and the destructor.
//
//   good              -- root submits two tasks to a one-worker pool
//                        and immediately destroys it; both tasks must
//                        have run once the destructor returns.
//   concurrent_submit -- a second thread races its Submit against the
//                        root's Submit and the worker's drain (the
//                        destructor still happens after the submitter
//                        joined, per the pool's contract); both tasks
//                        must run. Bounded: three threads.

#include "model/scheduler.h"
#include "scenario_harness.h"
#include "util/concurrency.h"
#include "util/sync_model.h"

namespace monoclass {
namespace {

void ShutdownDrainsQueueBody() {
  mc::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    pool.Submit([&ran] { ran.fetch_add(1, mc::memory_order_relaxed); });
    pool.Submit([&ran] { ran.fetch_add(1, mc::memory_order_relaxed); });
  }
  model::Check(ran.load(mc::memory_order_relaxed) == 2,
               "pool dropped a queued task at shutdown");
}

void ConcurrentSubmitBody() {
  mc::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    mc::thread submitter([&] {
      pool.Submit([&ran] { ran.fetch_add(1, mc::memory_order_relaxed); });
    });
    pool.Submit([&ran] { ran.fetch_add(1, mc::memory_order_relaxed); });
    submitter.join();
  }
  model::Check(ran.load(mc::memory_order_relaxed) == 2,
               "pool lost a concurrently submitted task");
}

}  // namespace
}  // namespace monoclass

int main(int argc, char** argv) {
  using monoclass::model_test::ScenarioSpec;

  std::map<std::string, ScenarioSpec> specs;
  ScenarioSpec good;
  good.options.max_executions = 20000;
  good.body = monoclass::ShutdownDrainsQueueBody;
  specs["good"] = good;

  ScenarioSpec concurrent;
  concurrent.options.max_executions = 20000;
  concurrent.body = monoclass::ConcurrentSubmitBody;
  specs["concurrent_submit"] = concurrent;
  return monoclass::model_test::RunScenarioMain(argc, argv, specs);
}
