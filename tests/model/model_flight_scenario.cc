// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// mc_model scenarios for the flight recorder's per-slot seqlock
// (src/obs/flight.cc), the repo's most delicate lock-free protocol.
//
//   good              -- the REAL writer/snapshotter code: one thread
//                        records an event while the root thread
//                        snapshots concurrently. Explored exhaustively;
//                        asserts a snapshot never surfaces a torn
//                        event and that the event is intact once the
//                        writer has joined.
//   seqlock_good      -- a faithful miniature of the slot protocol
//                        (odd seq -> release fence -> payload -> even
//                        seq release) with TWO generations written to
//                        one slot, so reader tearing across
//                        generations is reachable. Must pass.
//   seqlock_nofence   -- the same miniature with the writer's release
//                        fence dropped: the seeded bug from the issue.
//                        The reader can validate seq before == after
//                        yet observe a mixed-generation payload; the
//                        checker must report the Check failure.
//                        Registered as a WILL_FAIL ctest.
//   seqlock_noacquire -- reader's acquire fence dropped instead; same
//                        expectation, exercised from the load side.
//
// The real-code scenario interns its event name and starts flight
// recording BEFORE Explore() so those one-time global stores are not
// part of the modeled state space, and drops all rings at the top of
// each execution so per-execution rings do not accumulate.

#include <cstdint>

#include "model/scheduler.h"
#include "obs/flight.h"
#include "scenario_harness.h"
#include "util/sync_model.h"

namespace monoclass {
namespace {

uint32_t g_event_name = 0;

void FlightWriterVsSnapshotBody() {
  // The previous execution's writer thread has joined, so its ring can
  // be freed; without this every execution leaks one ring.
  obs::internal::DropAllRingsForTesting();

  mc::thread writer([] {
    obs::RecordFlightEvent(obs::FlightEventType::kCounter, g_event_name, 42.0);
  });

  // Concurrent snapshot: may see zero events (stale head or torn slot
  // discarded), or the one event fully intact -- never a mix.
  const obs::FlightSnapshot during = obs::SnapshotFlight();
  model::Check(during.events.size() <= 1, "snapshot invented an event");
  for (const obs::FlightEvent& event : during.events) {
    model::Check(event.name_id == g_event_name,
                 "snapshot surfaced a torn name id");
    model::Check(event.value == 42.0, "snapshot surfaced a torn value");
    model::Check(event.type == obs::FlightEventType::kCounter,
                 "snapshot surfaced a torn event type");
  }

  writer.join();

  // After the join the event is fully published on every schedule.
  const obs::FlightSnapshot after = obs::SnapshotFlight();
  model::Check(after.events.size() == 1, "event missing after writer joined");
  model::Check(after.events[0].value == 42.0,
               "event corrupted after writer joined");
  model::Check(after.torn == 0, "quiescent snapshot reported a torn slot");
}

// ---------------------------------------------------------------------
// Miniature of the flight slot protocol, parameterized so each fence
// can be dropped to reproduce the seeded bugs. Two generations target
// the same slot with a two-word payload; tearing means the reader
// accepts generation-0's seq with generation-1's payload (or a mix).

struct MiniSeqlockSlot {
  mc::atomic<uint64_t> seq{0};
  mc::atomic<uint64_t> a{0};
  mc::atomic<uint64_t> b{0};
};

void MiniSeqlockWrite(MiniSeqlockSlot& slot, uint64_t gen, bool writer_fence) {
  slot.seq.store(2 * gen + 1, mc::memory_order_relaxed);
  if (writer_fence) mc::atomic_thread_fence(mc::memory_order_release);
  slot.a.store(gen * 100 + 1, mc::memory_order_relaxed);
  slot.b.store(gen * 100 + 2, mc::memory_order_relaxed);
  slot.seq.store(2 * gen + 2, mc::memory_order_release);
}

void MiniSeqlockBody(bool writer_fence, bool reader_fence) {
  MiniSeqlockSlot slot;
  mc::thread writer([&] {
    MiniSeqlockWrite(slot, 0, writer_fence);
    MiniSeqlockWrite(slot, 1, writer_fence);
  });

  const uint64_t seq_before = slot.seq.load(mc::memory_order_acquire);
  if (seq_before != 0 && (seq_before & 1) == 0) {
    const uint64_t a = slot.a.load(mc::memory_order_relaxed);
    const uint64_t b = slot.b.load(mc::memory_order_relaxed);
    if (reader_fence) mc::atomic_thread_fence(mc::memory_order_acquire);
    const uint64_t seq_after = slot.seq.load(mc::memory_order_relaxed);
    if (seq_before == seq_after) {
      const uint64_t gen = seq_before / 2 - 1;
      model::Check(a == gen * 100 + 1,
                   "seqlock reader accepted a torn payload (word a)");
      model::Check(b == gen * 100 + 2,
                   "seqlock reader accepted a torn payload (word b)");
    }
  }
  writer.join();
}

}  // namespace
}  // namespace monoclass

int main(int argc, char** argv) {
  using monoclass::model_test::ScenarioSpec;
  namespace obs = monoclass::obs;

  // One-time global setup, deliberately outside the modeled state
  // space: the recording flag and the interned name are then single
  // seed values during every execution instead of extra stores.
  obs::StartFlightRecording();
  monoclass::g_event_name = obs::InternFlightName("model.flight.counter");

  std::map<std::string, ScenarioSpec> specs;
  specs["good"] = {{}, monoclass::FlightWriterVsSnapshotBody};
  specs["seqlock_good"] = {{}, [] { monoclass::MiniSeqlockBody(true, true); }};
  specs["seqlock_nofence"] = {{},
                              [] { monoclass::MiniSeqlockBody(false, true); }};
  specs["seqlock_noacquire"] = {{},
                               [] { monoclass::MiniSeqlockBody(true, false); }};
  return monoclass::model_test::RunScenarioMain(argc, argv, specs);
}
