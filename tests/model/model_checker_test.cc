// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Litmus tests for the mc_model scheduler itself: classic memory-model
// shapes with known answers, checked under exhaustive exploration.
// These pin down the checker's semantics (store-buffer visibility,
// release/acquire ordering, race detection, deadlock detection, timed
// waits, replay) independently of the repo scenarios in the sibling
// model_*_scenario.cc drivers.

#include <chrono>
#include <string>

#include <gtest/gtest.h>

#include "model/scheduler.h"
#include "util/sync_model.h"

namespace monoclass {
namespace {

// Two unsynchronized load-then-store increments must lose an update in
// at least one interleaving, and the DFS must terminate (completeness
// in both directions: the bad schedule exists and is found).
TEST(ModelChecker, ExhaustiveExplorationFindsLostUpdate) {
  bool saw_lost_update = false;
  bool saw_both_applied = false;
  model::Options options;
  const model::Result result = model::Explore(options, [&] {
    mc::atomic<int> counter{0};
    const auto increment = [&counter] {
      const int value = counter.load(mc::memory_order_relaxed);
      counter.store(value + 1, mc::memory_order_relaxed);
    };
    mc::thread a(increment);
    mc::thread b(increment);
    a.join();
    b.join();
    const int final_value = counter.load(mc::memory_order_relaxed);
    if (final_value == 1) saw_lost_update = true;
    if (final_value == 2) saw_both_applied = true;
  });
  EXPECT_FALSE(result.violation) << result.message;
  EXPECT_TRUE(result.complete);
  EXPECT_GE(result.executions, 2u);
  EXPECT_TRUE(saw_lost_update);
  EXPECT_TRUE(saw_both_applied);
}

// fetch_add reads the latest value in modification order, so atomic
// RMW increments never lose updates on any schedule.
TEST(ModelChecker, RmwIncrementsNeverLoseUpdates) {
  model::Options options;
  const model::Result result = model::Explore(options, [] {
    mc::atomic<int> counter{0};
    const auto increment = [&counter] {
      counter.fetch_add(1, mc::memory_order_relaxed);
    };
    mc::thread a(increment);
    mc::thread b(increment);
    a.join();
    b.join();
    model::Check(counter.load(mc::memory_order_relaxed) == 2,
                 "atomic RMW lost an update");
  });
  EXPECT_FALSE(result.violation) << result.message;
  EXPECT_TRUE(result.complete);
}

// Message passing over relaxed atomics: the store buffer must let the
// reader observe flag == 1 while still reading the stale data == 0.
TEST(ModelChecker, RelaxedMessagePassingObservesStaleData) {
  bool saw_stale_read = false;
  model::Options options;
  const model::Result result = model::Explore(options, [&] {
    mc::atomic<int> data{0};
    mc::atomic<int> flag{0};
    mc::thread producer([&] {
      data.store(1, mc::memory_order_relaxed);
      flag.store(1, mc::memory_order_relaxed);
    });
    if (flag.load(mc::memory_order_relaxed) == 1 &&
        data.load(mc::memory_order_relaxed) == 0) {
      saw_stale_read = true;
    }
    producer.join();
  });
  EXPECT_FALSE(result.violation) << result.message;
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(saw_stale_read);
}

// The same shape with a release store / acquire load pair: once the
// reader sees flag == 1 it must also see data == 1, on every schedule.
TEST(ModelChecker, ReleaseAcquireForbidsStaleData) {
  model::Options options;
  const model::Result result = model::Explore(options, [] {
    mc::atomic<int> data{0};
    mc::atomic<int> flag{0};
    mc::thread producer([&] {
      data.store(1, mc::memory_order_relaxed);
      flag.store(1, mc::memory_order_release);
    });
    if (flag.load(mc::memory_order_acquire) == 1) {
      model::Check(data.load(mc::memory_order_relaxed) == 1,
                   "acquire load did not synchronize with release store");
    }
    producer.join();
  });
  EXPECT_FALSE(result.violation) << result.message;
  EXPECT_TRUE(result.complete);
}

// Release/acquire FENCES must provide the same guarantee as the
// release store / acquire load pair (fence-to-fence synchronization).
TEST(ModelChecker, FenceSynchronizationForbidsStaleData) {
  model::Options options;
  const model::Result result = model::Explore(options, [] {
    mc::atomic<int> data{0};
    mc::atomic<int> flag{0};
    mc::thread producer([&] {
      data.store(1, mc::memory_order_relaxed);
      mc::atomic_thread_fence(mc::memory_order_release);
      flag.store(1, mc::memory_order_relaxed);
    });
    if (flag.load(mc::memory_order_relaxed) == 1) {
      mc::atomic_thread_fence(mc::memory_order_acquire);
      model::Check(data.load(mc::memory_order_relaxed) == 1,
                   "acquire fence did not synchronize with release fence");
    }
    producer.join();
  });
  EXPECT_FALSE(result.violation) << result.message;
  EXPECT_TRUE(result.complete);
}

// An unsynchronized mc::cell write racing a read must be reported as a
// data race, with a well-formed replay token.
TEST(ModelChecker, PlainCellRaceIsDetected) {
  model::Options options;
  const model::Result result = model::Explore(options, [] {
    mc::cell<int> shared{0};
    mc::thread writer([&] { shared.set(1); });
    (void)shared.get();
    writer.join();
  });
  EXPECT_TRUE(result.violation);
  EXPECT_NE(result.message.find("data race"), std::string::npos)
      << result.message;
  EXPECT_EQ(result.token.rfind("MCSCHED1:", 0), 0u) << result.token;
}

// The same race guarded by a mutex is race-free: lock/unlock edges
// must feed the happens-before clocks.
TEST(ModelChecker, MutexOrderingSuppressesRace) {
  model::Options options;
  const model::Result result = model::Explore(options, [] {
    mc::Mutex mu;
    mc::cell<int> shared{0};
    mc::thread writer([&] {
      mu.lock();
      shared.set(1);
      mu.unlock();
    });
    mu.lock();
    (void)shared.get();
    mu.unlock();
    writer.join();
  });
  EXPECT_FALSE(result.violation) << result.message;
  EXPECT_TRUE(result.complete);
}

// Feeding a violation's token back through Options::replay_token must
// reproduce the same violation in exactly one execution.
TEST(ModelChecker, ReplayTokenReproducesViolationDeterministically) {
  const auto body = [] {
    mc::cell<int> shared{0};
    mc::thread writer([&] { shared.set(1); });
    (void)shared.get();
    writer.join();
  };
  model::Options options;
  const model::Result first = model::Explore(options, body);
  ASSERT_TRUE(first.violation);
  ASSERT_FALSE(first.token.empty());

  model::Options replay;
  replay.replay_token = first.token;
  const model::Result second = model::Explore(replay, body);
  EXPECT_TRUE(second.violation);
  EXPECT_EQ(second.executions, 1u);
  EXPECT_EQ(second.token, first.token);
  EXPECT_EQ(second.message, first.message);
}

// Classic ABBA lock ordering inversion must be reported as a deadlock
// (no runnable thread while unfinished threads remain).
TEST(ModelChecker, AbbaLockInversionDeadlocks) {
  model::Options options;
  const model::Result result = model::Explore(options, [] {
    mc::Mutex a;
    mc::Mutex b;
    mc::thread t([&] {
      a.lock();
      b.lock();
      b.unlock();
      a.unlock();
    });
    b.lock();
    a.lock();
    a.unlock();
    b.unlock();
    t.join();
  });
  EXPECT_TRUE(result.violation);
  EXPECT_NE(result.message.find("deadlock"), std::string::npos)
      << result.message;
}

// A timed condition-variable wait is a scheduler choice: both the
// notified path and the timeout path must be explored, and the tree
// must still be finite (the waiter breaks out on timeout).
TEST(ModelChecker, TimedWaitExploresNotifyAndTimeout) {
  int timeout_schedules = 0;
  int notified_schedules = 0;
  model::Options options;
  const model::Result result = model::Explore(options, [&] {
    mc::Mutex mu;
    mc::CondVar cv;
    mc::cell<bool> ready{false};
    mc::thread producer([&] {
      mu.lock();
      ready.set(true);
      mu.unlock();
      cv.notify_one();
    });
    bool timed_out = false;
    mu.lock();
    while (!ready.get()) {
      if (cv.wait_for(mu, std::chrono::milliseconds(1)) ==
          std::cv_status::timeout) {
        timed_out = true;
        break;
      }
    }
    mu.unlock();
    if (timed_out) {
      ++timeout_schedules;
    } else {
      ++notified_schedules;
    }
    producer.join();
  });
  EXPECT_FALSE(result.violation) << result.message;
  EXPECT_TRUE(result.complete);
  EXPECT_GT(timeout_schedules, 0);
  EXPECT_GT(notified_schedules, 0);
}

// A failed model::Check reports the message and a replay token.
TEST(ModelChecker, CheckFailureReportsAssertionAndToken) {
  model::Options options;
  const model::Result result =
      model::Explore(options, [] { model::Check(false, "boom"); });
  EXPECT_TRUE(result.violation);
  EXPECT_NE(result.message.find("assertion failed: boom"), std::string::npos)
      << result.message;
  EXPECT_EQ(result.executions, 1u);
}

// max_executions caps the exploration and reports incompleteness.
TEST(ModelChecker, MaxExecutionsBoundsTheSearch) {
  model::Options options;
  options.max_executions = 1;
  const model::Result result = model::Explore(options, [] {
    mc::atomic<int> x{0};
    mc::thread t([&] { x.store(1, mc::memory_order_relaxed); });
    (void)x.load(mc::memory_order_relaxed);
    t.join();
  });
  EXPECT_FALSE(result.violation) << result.message;
  EXPECT_EQ(result.executions, 1u);
  EXPECT_FALSE(result.complete);
}

// Double-lock of a non-recursive mutex by the same thread is reported.
TEST(ModelChecker, RecursiveLockIsReported) {
  model::Options options;
  const model::Result result = model::Explore(options, [] {
    mc::Mutex mu;
    mu.lock();
    mu.lock();
  });
  EXPECT_TRUE(result.violation);
  EXPECT_NE(result.message.find("recursive lock"), std::string::npos)
      << result.message;
}

}  // namespace
}  // namespace monoclass
