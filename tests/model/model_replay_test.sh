#!/usr/bin/env bash
# Copyright 2026 The monoclass Authors
# Licensed under the Apache License, Version 2.0.
#
# End-to-end check of the deterministic replay contract: run a seeded-
# bug scenario, harvest the MCSCHED1 token it prints, feed the token
# back with --replay, and require (a) the same violation verdict, (b) a
# single execution, and (c) an identical violation report. This is the
# same loop a developer runs when CI hands them a token.
#
# Usage: model_replay_test.sh <scenario-binary> <scenario-name>

set -u

die() { echo "model_replay_test: $*" >&2; exit 1; }

[ $# -eq 2 ] || die "usage: $0 <scenario-binary> <scenario-name>"
bin=$1
scenario=$2
[ -x "$bin" ] || die "not executable: $bin"

first_out=$("$bin" --scenario="$scenario" 2>&1)
first_rc=$?
[ "$first_rc" -eq 1 ] || die "expected exit 1 from seeded bug, got $first_rc: $first_out"

token=$(printf '%s\n' "$first_out" | grep -oE 'MCSCHED1:[^ ]*' | head -n 1)
[ -n "$token" ] || die "no MCSCHED1 token in output: $first_out"

second_out=$("$bin" --scenario="$scenario" --replay="$token" 2>&1)
second_rc=$?
[ "$second_rc" -eq 1 ] || die "replay did not reproduce the violation (exit $second_rc): $second_out"

printf '%s\n' "$second_out" | grep -q "after 1 execution" \
  || die "replay should run exactly one execution: $second_out"

# The report below the per-run header (message + token) must be
# byte-identical; only the "after N execution(s)" count may differ.
first_report=$(printf '%s\n' "$first_out" | grep -v '^model\[')
second_report=$(printf '%s\n' "$second_out" | grep -v '^model\[')
[ "$first_report" = "$second_report" ] || {
  echo "--- exploration report ---" >&2
  printf '%s\n' "$first_report" >&2
  echo "--- replay report ---" >&2
  printf '%s\n' "$second_report" >&2
  die "replay report differs from the original violation"
}

third_out=$("$bin" --scenario="$scenario" --replay="$token" 2>&1)
[ "$(printf '%s\n' "$third_out" | grep -v '^model\[')" = "$second_report" ] \
  || die "two replays of the same token disagree"

echo "model_replay_test: OK (token $token replays deterministically)"
