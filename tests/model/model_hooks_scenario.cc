// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// mc_model scenarios for the PoolHooks publication protocol
// (src/util/concurrency.cc): hooks are installed with release stores
// and loaded at the firing sites with acquire loads, which is exactly
// what makes "install hooks while pool traffic is in flight" safe --
// the acquire load that observes the new pointer also observes
// everything the installer published before it.
//
//   good       -- the REAL code path: a ThreadPool worker is running
//                 while a separate thread publishes a payload cell and
//                 then installs a task_enqueued hook via SetPoolHooks;
//                 the root thread Submits a task, whose hook firing
//                 (if the acquire load sees the install) must observe
//                 the payload race-free. Bounded exploration (three
//                 threads plus pool machinery).
//   norelease  -- miniature of the same shape with the publishing
//                 store downgraded to relaxed: the seeded bug. The
//                 consumer can observe the table pointer without
//                 happens-before, so reading the payload is a data
//                 race the checker must report (WILL_FAIL ctest).
//   noacquire  -- the firing-site load downgraded to relaxed instead;
//                 same expected data race from the consumer side.

#include <cstddef>
#include <cstdint>

#include "model/scheduler.h"
#include "scenario_harness.h"
#include "util/concurrency.h"
#include "util/sync_model.h"

namespace monoclass {
namespace {

mc::atomic<int> g_hook_fired{0};
mc::cell<int> g_hook_payload{0};

void OnTaskEnqueued(std::size_t /*queue_depth*/) {
  g_hook_fired.fetch_add(1, mc::memory_order_relaxed);
  // The acquire load of the hook pointer that led here must also have
  // published the payload written before SetPoolHooks; if it did not,
  // this read races with the installer's write.
  model::Check(g_hook_payload.get() == 7,
               "hook observed the table but not the payload behind it");
}

void HooksInstallVsFireBody() {
  internal::SetPoolHooks({});  // reset any install from a prior execution
  g_hook_payload.set(0);
  g_hook_fired.store(0, mc::memory_order_relaxed);

  ThreadPool pool(1);
  mc::thread installer([] {
    g_hook_payload.set(7);
    internal::PoolHooks hooks;
    hooks.task_enqueued = &OnTaskEnqueued;
    internal::SetPoolHooks(hooks);
  });
  pool.Submit([] {});
  installer.join();
  // ~pool drains the queue and joins the worker before the execution
  // ends; whether the hook fired depends on the schedule, and both
  // outcomes are valid.
}

// ---------------------------------------------------------------------
// Miniature publication shape for the seeded-bug variants: a one-entry
// "hook table" (an atomic flag standing in for the function pointer)
// guarding a plain payload cell.

void HookTableBody(mc::memory_order store_order, mc::memory_order load_order) {
  mc::cell<int> payload{0};
  mc::atomic<uint64_t> table{0};
  mc::thread installer([&] {
    payload.set(7);
    table.store(1, store_order);
  });
  if (table.load(load_order) != 0) {
    model::Check(payload.get() == 7, "consumer saw a half-published hook");
  }
  installer.join();
}

}  // namespace
}  // namespace monoclass

int main(int argc, char** argv) {
  using monoclass::mc::memory_order_acquire;
  using monoclass::mc::memory_order_relaxed;
  using monoclass::mc::memory_order_release;
  using monoclass::model_test::ScenarioSpec;

  std::map<std::string, ScenarioSpec> specs;
  ScenarioSpec good;
  // Three threads plus the pool's own mutex/condvar traffic: too large
  // to exhaust in CI, so the default is a generous bound. The nightly
  // sweep lifts it with --max-executions=0.
  good.options.max_executions = 20000;
  good.body = monoclass::HooksInstallVsFireBody;
  specs["good"] = good;
  specs["publish_good"] = {{}, [] {
    monoclass::HookTableBody(memory_order_release, memory_order_acquire);
  }};
  specs["norelease"] = {{}, [] {
    monoclass::HookTableBody(memory_order_relaxed, memory_order_acquire);
  }};
  specs["noacquire"] = {{}, [] {
    monoclass::HookTableBody(memory_order_release, memory_order_relaxed);
  }};
  return monoclass::model_test::RunScenarioMain(argc, argv, specs);
}
