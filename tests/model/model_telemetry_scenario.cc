// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// mc_model scenario for the telemetry publisher (src/obs/telemetry.cc):
// StartTelemetry spins up a one-worker pool running TelemetryLoop,
// which writes a snapshot and then blocks in a timed condition-variable
// wait; StopTelemetry races the stop-flag write and notification
// against the loop's wait/timeout/rewrite cycle, then joins the worker
// through the pool destructor.
//
// The timed wait makes the schedule tree infinite (every timeout is
// another loop iteration), so this scenario is inherently BOUNDED:
// max_executions caps the sweep and the harness reports "bounded"
// instead of "schedule tree exhausted". The checked properties are
// that no schedule deadlocks, races, or leaves telemetry active after
// StopTelemetry returns.

#include <cstdlib>
#include <string>

#include "model/scheduler.h"
#include "obs/telemetry.h"
#include "scenario_harness.h"

namespace monoclass {
namespace {

std::string g_snapshot_path;

void TelemetryPublishVsStopBody() {
  model::Check(obs::StartTelemetry(g_snapshot_path, /*interval_ms=*/1),
               "StartTelemetry refused to start");
  model::Check(obs::TelemetryActive(), "telemetry not active after start");
  obs::StopTelemetry();
  model::Check(!obs::TelemetryActive(), "telemetry still active after stop");
}

}  // namespace
}  // namespace monoclass

int main(int argc, char** argv) {
  using monoclass::model_test::ScenarioSpec;

  const char* tmpdir = std::getenv("TMPDIR");
  monoclass::g_snapshot_path =
      std::string(tmpdir != nullptr && tmpdir[0] != '\0' ? tmpdir : "/tmp") +
      "/mc_model_telemetry_snapshot.json";

  std::map<std::string, ScenarioSpec> specs;
  ScenarioSpec good;
  // Bounded by construction (see header comment); each execution also
  // writes real snapshot files, so keep the default modest.
  good.options.max_executions = 1000;
  good.options.max_steps = 4000;
  good.body = monoclass::TelemetryPublishVsStopBody;
  specs["good"] = good;
  return monoclass::model_test::RunScenarioMain(argc, argv, specs);
}
