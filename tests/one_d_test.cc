// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the Section 3 recursive 1D active algorithm: exactness on
// small inputs (probe-all base case), the (1+eps) guarantee on noisy
// inputs across repeated randomized trials, Sigma structure (Lemma 13),
// probe accounting, and determinism.

#include "active/one_d.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "active/oracle.h"
#include "core/classifier.h"
#include "passive/isotonic_1d.h"
#include "util/random.h"

namespace monoclass {
namespace {

// Runs the 1D algorithm on a labeled 1D set using its natural coordinates.
OneDSolveResult RunOn(const LabeledPointSet& set, InMemoryOracle& oracle,
                      const ActiveSamplingParams& params, uint64_t seed) {
  std::vector<size_t> indices(set.size());
  std::iota(indices.begin(), indices.end(), size_t{0});
  std::vector<double> coordinates(set.size());
  for (size_t i = 0; i < set.size(); ++i) coordinates[i] = set.point(i)[0];
  Rng rng(seed);
  return SolveActive1D(indices, coordinates, oracle, params, rng);
}

// Exact k* of a 1D labeled set via the exact threshold solver.
size_t Exact1DOptimum(const LabeledPointSet& set) {
  std::vector<Weighted1DPoint> points(set.size());
  for (size_t i = 0; i < set.size(); ++i) {
    points[i] = Weighted1DPoint{set.point(i)[0], set.label(i), 1.0};
  }
  return static_cast<size_t>(
      Solve1DWeighted(points).optimal_weighted_error + 0.5);
}

size_t ErrorOfTau(const LabeledPointSet& set, double tau) {
  return CountErrors(MonotoneClassifier::Threshold1D(tau), set);
}

// Noisy threshold instance: labels 1 above a planted cut, then `flips`
// random flips.
LabeledPointSet NoisyThreshold(size_t n, size_t cut, size_t flips,
                               uint64_t seed) {
  Rng rng(seed);
  LabeledPointSet set;
  std::vector<Label> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = i >= cut ? 1 : 0;
  for (const size_t i : rng.SampleWithoutReplacement(n, flips)) {
    labels[i] = static_cast<Label>(1 - labels[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    set.Add(Point{static_cast<double>(i)}, labels[i]);
  }
  return set;
}

TEST(OneDActiveTest, TinyInputIsSolvedExactly) {
  // n <= small_set_threshold: the algorithm probes everything, so the
  // returned tau is exactly optimal.
  const LabeledPointSet set = NoisyThreshold(7, 3, 1, 11);
  InMemoryOracle oracle(set);
  const auto result = RunOn(set, oracle,
                            ActiveSamplingParams::Paper(0.5, 0.01), 1);
  EXPECT_EQ(oracle.NumProbes(), 7u);
  EXPECT_EQ(ErrorOfTau(set, result.tau), Exact1DOptimum(set));
}

TEST(OneDActiveTest, PaperConstantsFallBackToFullProbeAndStayExact) {
  // With the proof constants the Lemma 5 sample size exceeds any
  // laptop-sized level, so every level full-probes: the answer is exact.
  const LabeledPointSet set = NoisyThreshold(500, 200, 25, 13);
  InMemoryOracle oracle(set);
  const auto result = RunOn(set, oracle,
                            ActiveSamplingParams::Paper(0.5, 0.01), 2);
  EXPECT_EQ(ErrorOfTau(set, result.tau), Exact1DOptimum(set));
  EXPECT_EQ(oracle.NumProbes(), set.size());
}

TEST(OneDActiveTest, CleanInputRecoversZeroError) {
  const LabeledPointSet set = NoisyThreshold(4096, 1700, 0, 17);
  size_t successes = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    InMemoryOracle oracle(set);
    const auto result = RunOn(
        set, oracle, ActiveSamplingParams::Practical(0.5, 0.05), seed);
    if (ErrorOfTau(set, result.tau) == 0) ++successes;
  }
  // k* = 0: Theorem 2 promises exact recovery with high probability.
  EXPECT_GE(successes, 9u);
}

TEST(OneDActiveTest, ApproximationGuaranteeOnNoisyInput) {
  const size_t kN = 4096;
  const size_t kFlips = 200;
  const LabeledPointSet set = NoisyThreshold(kN, 2000, kFlips, 19);
  const size_t optimum = Exact1DOptimum(set);
  ASSERT_GT(optimum, 0u);
  const double epsilon = 0.5;
  size_t within = 0;
  const int kTrials = 20;
  for (int trial = 0; trial < kTrials; ++trial) {
    InMemoryOracle oracle(set);
    const auto result =
        RunOn(set, oracle, ActiveSamplingParams::Practical(epsilon, 0.05),
              100 + static_cast<uint64_t>(trial));
    const size_t error = ErrorOfTau(set, result.tau);
    if (static_cast<double>(error) <=
        (1.0 + epsilon) * static_cast<double>(optimum)) {
      ++within;
    }
  }
  EXPECT_GE(within, 18) << "(1+eps)k* should hold in almost every trial";
}

TEST(OneDActiveTest, ProbesSublinearOnLargeInput) {
  const LabeledPointSet set = NoisyThreshold(1 << 15, 9000, 300, 23);
  InMemoryOracle oracle(set);
  RunOn(set, oracle, ActiveSamplingParams::Practical(1.0, 0.1), 5);
  EXPECT_LT(oracle.NumProbes(), set.size() / 2)
      << "the whole point of the algorithm";
}

TEST(OneDActiveTest, SigmaErrorApproximatesTrueError) {
  // Lemma 13 + eq. (8): w-err_Sigma(h^tau) tracks err_P(h^tau) within
  // eps|P|/64 under paper constants; Practical constants keep the same
  // shape with a looser constant, checked here at eps|P|/4.
  const size_t kN = 8192;
  const LabeledPointSet set = NoisyThreshold(kN, 3000, 400, 29);
  InMemoryOracle oracle(set);
  const double epsilon = 0.5;
  const auto result = RunOn(
      set, oracle, ActiveSamplingParams::Practical(epsilon, 0.05), 7);
  std::vector<Weighted1DPoint> sigma(result.sigma.size());
  for (size_t i = 0; i < result.sigma.size(); ++i) {
    sigma[i] = Weighted1DPoint{result.sigma[i].coordinate,
                               result.sigma[i].label,
                               result.sigma[i].weight};
  }
  for (const double tau : {-1.0, 1000.0, 3000.0, 5000.0, 8191.0}) {
    double sigma_err = 0.0;
    for (const auto& entry : sigma) {
      const bool predicted = entry.value > tau;
      if (predicted != (entry.label == 1)) sigma_err += entry.weight;
    }
    const double true_err = static_cast<double>(ErrorOfTau(set, tau));
    EXPECT_NEAR(sigma_err, true_err,
                epsilon * static_cast<double>(kN) / 4.0)
        << "tau = " << tau;
  }
}

TEST(OneDActiveTest, SigmaWeightsCoverTheLevels) {
  // Every level contributes |level| total weight (samples carry
  // |level|/|sample| each), so Sigma's total weight is at least |P| and
  // at most |P| * levels.
  const LabeledPointSet set = NoisyThreshold(4096, 1500, 100, 31);
  InMemoryOracle oracle(set);
  const auto result = RunOn(
      set, oracle, ActiveSamplingParams::Practical(0.5, 0.05), 9);
  double total = 0.0;
  for (const auto& entry : result.sigma) total += entry.weight;
  EXPECT_GE(total, static_cast<double>(set.size()) * 0.99);
  EXPECT_LE(total, static_cast<double>(set.size()) *
                       static_cast<double>(result.levels));
}

TEST(OneDActiveTest, DeterministicUnderSeed) {
  const LabeledPointSet set = NoisyThreshold(2048, 700, 60, 37);
  InMemoryOracle oracle_a(set);
  InMemoryOracle oracle_b(set);
  const auto params = ActiveSamplingParams::Practical(0.5, 0.05);
  const auto a = RunOn(set, oracle_a, params, 42);
  const auto b = RunOn(set, oracle_b, params, 42);
  EXPECT_EQ(a.tau, b.tau);
  EXPECT_EQ(a.sigma.size(), b.sigma.size());
  EXPECT_EQ(oracle_a.NumProbes(), oracle_b.NumProbes());
}

TEST(OneDActiveTest, LevelsAreLogarithmicallyBounded) {
  const LabeledPointSet set = NoisyThreshold(1 << 14, 5000, 100, 41);
  InMemoryOracle oracle(set);
  const auto result = RunOn(
      set, oracle, ActiveSamplingParams::Practical(1.0, 0.1), 11);
  // Lemma 10: levels <= log_{8/5}(n) + 1 ~ 22 for n = 16384.
  EXPECT_LE(result.levels, 22u);
}

TEST(OneDActiveTest, AllLabelsSameIsExactWithZeroError) {
  LabeledPointSet set;
  for (size_t i = 0; i < 2000; ++i) {
    set.Add(Point{static_cast<double>(i)}, 1);
  }
  InMemoryOracle oracle(set);
  const auto result = RunOn(
      set, oracle, ActiveSamplingParams::Practical(0.5, 0.05), 13);
  EXPECT_EQ(ErrorOfTau(set, result.tau), 0u);
}

TEST(OneDActiveTest, DuplicateCoordinatesHandled) {
  Rng data_rng(43);
  LabeledPointSet set;
  for (size_t i = 0; i < 3000; ++i) {
    const double value = static_cast<double>(data_rng.UniformInt(50));
    set.Add(Point{value}, value > 25 ? 1 : 0);
  }
  InMemoryOracle oracle(set);
  const auto result = RunOn(
      set, oracle, ActiveSamplingParams::Practical(0.5, 0.05), 15);
  EXPECT_EQ(ErrorOfTau(set, result.tau), 0u);
}

}  // namespace
}  // namespace monoclass
