// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Proves the sync seam (util/sync_model.h) costs nothing when
// MONOCLASS_MODEL is off: the mc:: names must BE the std:: types (not
// wrappers around them), mc::cell must be layout-identical to its
// payload, and the model macro must be compiled out. Only built in
// normal (model-off) configurations -- see tests/CMakeLists.txt.

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <type_traits>

#include <gtest/gtest.h>

#include "util/sync_model.h"

namespace monoclass {
namespace {

static_assert(MC_MODEL_COMPILED == 0,
              "model-off build must compile the seam out entirely");

// Aliases, not wrappers: the types are std's own, so codegen and ABI
// are bit-identical to writing std:: directly.
static_assert(std::is_same_v<mc::atomic<int>, std::atomic<int>>);
static_assert(std::is_same_v<mc::atomic<uint64_t>, std::atomic<uint64_t>>);
static_assert(std::is_same_v<mc::atomic<void (*)(double)>,
                             std::atomic<void (*)(double)>>);
static_assert(std::is_same_v<mc::Mutex, std::mutex>);
static_assert(std::is_same_v<mc::CondVar, std::condition_variable_any>);
static_assert(std::is_same_v<mc::thread, std::thread>);

// The re-exported memory orders are the std enumerators themselves.
static_assert(mc::memory_order_relaxed == std::memory_order_relaxed);
static_assert(mc::memory_order_acquire == std::memory_order_acquire);
static_assert(mc::memory_order_release == std::memory_order_release);
static_assert(mc::memory_order_acq_rel == std::memory_order_acq_rel);
static_assert(mc::memory_order_seq_cst == std::memory_order_seq_cst);

// mc::cell<T> holds exactly a T: no tag, no padding, trivially
// destructible when T is.
static_assert(sizeof(mc::cell<int>) == sizeof(int));
static_assert(sizeof(mc::cell<double>) == sizeof(double));
static_assert(std::is_trivially_destructible_v<mc::cell<int>>);

TEST(ModelCompileOut, CellIsATransparentValueHolder) {
  mc::cell<int> cell(3);
  EXPECT_EQ(cell.get(), 3);
  cell.set(4);
  EXPECT_EQ(cell.get(), 4);
}

TEST(ModelCompileOut, FenceForwardsToStd) {
  // Smoke: the free function exists and accepts the re-exported orders.
  mc::atomic_thread_fence(mc::memory_order_acquire);
  mc::atomic_thread_fence(mc::memory_order_release);
  SUCCEED();
}

}  // namespace
}  // namespace monoclass
