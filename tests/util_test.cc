// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the util layer: CHECK macros, RNG, statistics, table printing.

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace monoclass {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  MC_CHECK(true);
  MC_CHECK_EQ(1, 1);
  MC_CHECK_LT(1, 2);
  MC_CHECK_GE(2.0, 2.0);
  SUCCEED();
}

TEST(CheckTest, FailingCheckAborts) {
  EXPECT_DEATH(MC_CHECK(false) << "context", "MC_CHECK");
  EXPECT_DEATH(MC_CHECK_EQ(1, 2), "1 == 2");
}

TEST(RngTest, DeterministicSequences) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformIntInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(13);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  const std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleWithReplacementBounds) {
  Rng rng(15);
  const auto sample = rng.SampleWithReplacement(10, 100);
  EXPECT_EQ(sample.size(), 100u);
  for (const size_t v : sample) EXPECT_LT(v, 10u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  auto shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(19);
  Rng child_a = parent.Fork();
  Rng child_b = parent.Fork();
  EXPECT_NE(child_a.Next(), child_b.Next());
}

TEST(StatsTest, EmptyStat) {
  const RunningStat stat;
  EXPECT_EQ(stat.Count(), 0u);
  EXPECT_DOUBLE_EQ(stat.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.Variance(), 0.0);
}

TEST(StatsTest, MeanVarianceMinMax) {
  RunningStat stat;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stat.Add(v);
  }
  EXPECT_DOUBLE_EQ(stat.Mean(), 5.0);
  EXPECT_NEAR(stat.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stat.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.Max(), 9.0);
  EXPECT_DOUBLE_EQ(stat.Sum(), 40.0);
}

TEST(StatsTest, Quantiles) {
  RunningStat stat;
  for (int i = 1; i <= 100; ++i) stat.Add(static_cast<double>(i));
  EXPECT_NEAR(stat.Median(), 50.5, 1e-9);
  EXPECT_NEAR(stat.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(stat.Quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(stat.Quantile(0.9), 90.1, 0.2);
}

TEST(StatsTest, QuantileCacheInvalidatedByAdd) {
  RunningStat stat;
  stat.Add(1.0);
  EXPECT_DOUBLE_EQ(stat.Median(), 1.0);
  stat.Add(3.0);
  EXPECT_DOUBLE_EQ(stat.Median(), 2.0);
}

TEST(StatsTest, InterleavedAddAndQuantileStaysExact) {
  // The sorted view is maintained by incremental merge; interleaving
  // queries with out-of-order inserts must agree with a full re-sort.
  RunningStat stat;
  std::vector<double> reference;
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    for (int k = 0; k < 7; ++k) {
      const double v = static_cast<double>(rng.UniformInt(1000));
      stat.Add(v);
      reference.push_back(v);
    }
    std::vector<double> sorted = reference;
    std::sort(sorted.begin(), sorted.end());
    for (const double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
      const double pos = q * static_cast<double>(sorted.size() - 1);
      const auto lo = static_cast<size_t>(pos);
      const size_t hi = std::min(lo + 1, sorted.size() - 1);
      const double frac = pos - static_cast<double>(lo);
      const double expected =
          sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
      EXPECT_DOUBLE_EQ(stat.Quantile(q), expected)
          << "round " << round << " q " << q;
    }
  }
}

TEST(StatsTest, QuantileRepeatedQueriesWithoutAdds) {
  RunningStat stat;
  for (const double v : {5.0, 1.0, 3.0}) stat.Add(v);
  // Repeated queries hit the merged view; no pending samples remain.
  EXPECT_DOUBLE_EQ(stat.Median(), 3.0);
  EXPECT_DOUBLE_EQ(stat.Median(), 3.0);
  EXPECT_DOUBLE_EQ(stat.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stat.Quantile(1.0), 5.0);
}

TEST(StatsTest, FractionAbove) {
  RunningStat stat;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) stat.Add(v);
  EXPECT_DOUBLE_EQ(stat.FractionAbove(2.5), 0.5);
  EXPECT_DOUBLE_EQ(stat.FractionAbove(4.0), 0.0);
  EXPECT_DOUBLE_EQ(stat.FractionAbove(0.0), 1.0);
}

TEST(TableTest, AlignedOutput) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRowValues("b", 22.5);
  EXPECT_EQ(table.RowCount(), 2u);
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22.5"), std::string::npos);
  EXPECT_NE(text.find("|-"), std::string::npos);
}

TEST(TableTest, ArityMismatchAborts) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "");
}

TEST(FormatDoubleTest, SignificantDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.14");
  EXPECT_EQ(FormatDouble(1234.5, 6), "1234.5");
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
}

}  // namespace
}  // namespace monoclass
