// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.

#include "data/entity_matching.h"

#include <gtest/gtest.h>

#include "passive/flow_solver.h"

namespace monoclass {
namespace {

TEST(EntityMatchingTest, SizesAndParallelism) {
  EntityMatchingOptions options;
  options.num_pairs = 300;
  options.dimension = 4;
  const EntityMatchingInstance instance = GenerateEntityMatching(options);
  EXPECT_EQ(instance.data.size(), 300u);
  EXPECT_EQ(instance.pairs.size(), 300u);
  EXPECT_EQ(instance.data.dimension(), 4u);
}

TEST(EntityMatchingTest, LabelsMatchPairFlags) {
  EntityMatchingOptions options;
  options.num_pairs = 200;
  const EntityMatchingInstance instance = GenerateEntityMatching(options);
  for (size_t i = 0; i < instance.data.size(); ++i) {
    EXPECT_EQ(instance.data.label(i), instance.pairs[i].is_match ? 1 : 0);
  }
}

TEST(EntityMatchingTest, MatchFractionRoughlyRespected) {
  EntityMatchingOptions options;
  options.num_pairs = 2000;
  options.match_fraction = 0.4;
  const EntityMatchingInstance instance = GenerateEntityMatching(options);
  const double fraction =
      static_cast<double>(instance.data.CountPositive()) /
      static_cast<double>(instance.data.size());
  EXPECT_NEAR(fraction, 0.4, 0.05);
}

TEST(EntityMatchingTest, FeaturesInUnitCube) {
  EntityMatchingOptions options;
  options.num_pairs = 300;
  options.dimension = 5;
  const EntityMatchingInstance instance = GenerateEntityMatching(options);
  for (size_t i = 0; i < instance.data.size(); ++i) {
    for (size_t dim = 0; dim < 5; ++dim) {
      EXPECT_GE(instance.data.point(i)[dim], 0.0);
      EXPECT_LE(instance.data.point(i)[dim], 1.0);
    }
  }
}

TEST(EntityMatchingTest, WorkloadIsNearlyMonotone) {
  // The premise of the paper: similarity features separate matches from
  // non-matches almost monotonically -- k* should be a small fraction of n.
  EntityMatchingOptions options;
  options.num_pairs = 800;
  options.typo_rate = 0.15;
  const EntityMatchingInstance instance = GenerateEntityMatching(options);
  const size_t optimum = OptimalError(instance.data);
  EXPECT_LT(optimum, instance.data.size() / 10)
      << "similarity features should make the labels near-monotone";
}

TEST(EntityMatchingTest, HigherTypoRateRaisesDifficulty) {
  EntityMatchingOptions clean;
  clean.num_pairs = 600;
  clean.typo_rate = 0.02;
  clean.seed = 5;
  EntityMatchingOptions dirty = clean;
  dirty.typo_rate = 0.5;
  const size_t clean_optimum =
      OptimalError(GenerateEntityMatching(clean).data);
  const size_t dirty_optimum =
      OptimalError(GenerateEntityMatching(dirty).data);
  EXPECT_LE(clean_optimum, dirty_optimum);
}

TEST(EntityMatchingTest, DeterministicUnderSeed) {
  EntityMatchingOptions options;
  options.num_pairs = 100;
  options.seed = 9;
  const auto a = GenerateEntityMatching(options);
  const auto b = GenerateEntityMatching(options);
  EXPECT_EQ(a.data.labels(), b.data.labels());
  for (size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].left, b.pairs[i].left);
    EXPECT_EQ(a.pairs[i].right, b.pairs[i].right);
  }
}

TEST(EntityMatchingTest, MatchPairsShareAnEntity) {
  EntityMatchingOptions options;
  options.num_pairs = 400;
  options.typo_rate = 0.1;
  const EntityMatchingInstance instance = GenerateEntityMatching(options);
  // Matching pairs should on average be far more similar than non-matching
  // ones on the first feature (normalized Levenshtein).
  double match_sum = 0.0;
  double nonmatch_sum = 0.0;
  size_t matches = 0;
  size_t nonmatches = 0;
  for (size_t i = 0; i < instance.data.size(); ++i) {
    if (instance.pairs[i].is_match) {
      match_sum += instance.data.point(i)[0];
      ++matches;
    } else {
      nonmatch_sum += instance.data.point(i)[0];
      ++nonmatches;
    }
  }
  ASSERT_GT(matches, 0u);
  ASSERT_GT(nonmatches, 0u);
  EXPECT_GT(match_sum / static_cast<double>(matches),
            nonmatch_sum / static_cast<double>(nonmatches) + 0.2);
}

TEST(EntityMatchingTest, PeopleDomainGeneratesPersonRecords) {
  EntityMatchingOptions options;
  options.domain = RecordDomain::kPeople;
  options.num_pairs = 150;
  options.seed = 13;
  const EntityMatchingInstance instance = GenerateEntityMatching(options);
  EXPECT_EQ(instance.data.size(), 150u);
  // Person records mention a street ("street" or abbreviated "st").
  size_t with_street = 0;
  for (const auto& pair : instance.pairs) {
    if (pair.left.find(" street ") != std::string::npos ||
        pair.left.find(" st ") != std::string::npos) {
      ++with_street;
    }
  }
  EXPECT_EQ(with_street, instance.pairs.size());
}

TEST(EntityMatchingTest, PeopleDomainIsNearlyMonotoneToo) {
  EntityMatchingOptions options;
  options.domain = RecordDomain::kPeople;
  options.num_pairs = 600;
  options.typo_rate = 0.15;
  options.seed = 17;
  const EntityMatchingInstance instance = GenerateEntityMatching(options);
  EXPECT_LT(OptimalError(instance.data), instance.data.size() / 8);
}

TEST(EntityMatchingTest, DomainsProduceDifferentRecords) {
  EntityMatchingOptions products;
  products.num_pairs = 50;
  products.seed = 19;
  EntityMatchingOptions people = products;
  people.domain = RecordDomain::kPeople;
  const auto a = GenerateEntityMatching(products);
  const auto b = GenerateEntityMatching(people);
  EXPECT_NE(a.pairs[0].left, b.pairs[0].left);
}

}  // namespace
}  // namespace monoclass
