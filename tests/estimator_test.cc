// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the Lemma 5 sample-size calculator, including a statistical
// validation: at the computed sample size, the empirical deviation must
// exceed phi in at most ~delta of repeated trials (with slack for the
// test's own randomness).

#include "active/estimator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace monoclass {
namespace {

TEST(Lemma5SampleSizeTest, MatchesClosedForm) {
  // t = ceil(max(mu/phi^2, 1/phi) * 3 ln(2/delta)).
  const double phi = 0.1;
  const double delta = 0.05;
  const double expected =
      std::ceil(std::max(1.0 / (phi * phi), 1.0 / phi) * 3.0 *
                std::log(2.0 / delta));
  EXPECT_EQ(Lemma5SampleSize(phi, delta),
            static_cast<size_t>(expected));
}

TEST(Lemma5SampleSizeTest, SmallMuUsesLinearTerm) {
  // With mu <= phi the 1/phi term dominates the mu/phi^2 term.
  const size_t with_small_mu = Lemma5SampleSize(0.1, 0.1, 0.01);
  const size_t with_large_mu = Lemma5SampleSize(0.1, 0.1, 1.0);
  EXPECT_LT(with_small_mu, with_large_mu);
}

TEST(Lemma5SampleSizeTest, MonotoneInPhiAndDelta) {
  EXPECT_GT(Lemma5SampleSize(0.01, 0.1), Lemma5SampleSize(0.1, 0.1));
  EXPECT_GT(Lemma5SampleSize(0.1, 0.001), Lemma5SampleSize(0.1, 0.1));
}

TEST(Lemma5SampleSizeTest, ChernoffConstantScalesLinearly) {
  const size_t base = Lemma5SampleSize(0.1, 0.1, 1.0, 3.0);
  const size_t reduced = Lemma5SampleSize(0.1, 0.1, 1.0, 1.5);
  EXPECT_NEAR(static_cast<double>(base),
              2.0 * static_cast<double>(reduced), 2.0);
}

TEST(Lemma5SampleSizeTest, AtLeastOne) {
  EXPECT_GE(Lemma5SampleSize(1.0, 0.999), 1u);
}

TEST(Lemma5SampleSizeTest, RejectsBadArguments) {
  EXPECT_DEATH(Lemma5SampleSize(0.0, 0.1), "");
  EXPECT_DEATH(Lemma5SampleSize(0.1, 0.0), "");
  EXPECT_DEATH(Lemma5SampleSize(1.5, 0.1), "");
}

// The statistical content of Lemma 5 (experiment E9 in miniature): for a
// grid of (mu, phi, delta), the fraction of trials with |estimate - mu|
// >= phi stays below delta (paper bound) -- here we allow 2x slack since
// the test itself is a random experiment.
TEST(Lemma5StatisticalTest, DeviationBoundHolds) {
  Rng rng(12345);
  const double kDelta = 0.1;
  for (const double mu : {0.05, 0.3, 0.7}) {
    for (const double phi : {0.05, 0.15}) {
      const size_t t = Lemma5SampleSize(phi, kDelta, mu);
      int violations = 0;
      const int kTrials = 400;
      for (int trial = 0; trial < kTrials; ++trial) {
        const double estimate = EstimateBernoulliMean(rng, mu, t);
        if (std::abs(estimate - mu) >= phi) ++violations;
      }
      const double violation_rate =
          static_cast<double>(violations) / kTrials;
      EXPECT_LE(violation_rate, 2.0 * kDelta)
          << "mu=" << mu << " phi=" << phi << " t=" << t;
    }
  }
}

TEST(EstimateBernoulliMeanTest, DegenerateMeans) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(EstimateBernoulliMean(rng, 0.0, 100), 0.0);
  EXPECT_DOUBLE_EQ(EstimateBernoulliMean(rng, 1.0, 100), 1.0);
}

}  // namespace
}  // namespace monoclass
