// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.

#include "data/similarity.h"

#include <gtest/gtest.h>

namespace monoclass {
namespace {

TEST(LevenshteinTest, IdenticalStrings) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("hello", "hello"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("", ""), 1.0);
}

TEST(LevenshteinTest, CompletelyDifferent) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abc", "xyz"), 0.0);
}

TEST(LevenshteinTest, KnownDistances) {
  // kitten -> sitting: distance 3, max length 7.
  EXPECT_NEAR(NormalizedLevenshtein("kitten", "sitting"), 1.0 - 3.0 / 7.0,
              1e-12);
  // one deletion over length 4.
  EXPECT_NEAR(NormalizedLevenshtein("abcd", "abc"), 0.75, 1e-12);
}

TEST(LevenshteinTest, EmptyVersusNonEmpty) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("", "abc"), 0.0);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("flaw", "lawn"),
                   NormalizedLevenshtein("lawn", "flaw"));
}

TEST(QGramJaccardTest, IdenticalStrings) {
  EXPECT_DOUBLE_EQ(QGramJaccard("abcdef", "abcdef"), 1.0);
}

TEST(QGramJaccardTest, Disjoint) {
  EXPECT_DOUBLE_EQ(QGramJaccard("aaaa", "bbbb"), 0.0);
}

TEST(QGramJaccardTest, ShortStringsUseWholeString) {
  EXPECT_DOUBLE_EQ(QGramJaccard("ab", "ab", 3), 1.0);
  EXPECT_DOUBLE_EQ(QGramJaccard("ab", "cd", 3), 0.0);
}

TEST(QGramJaccardTest, PartialOverlap) {
  // "abcd" trigram multiset {abc, bcd}; "abce" -> {abc, bce}.
  // Intersection 1, union 3.
  EXPECT_NEAR(QGramJaccard("abcd", "abce"), 1.0 / 3.0, 1e-12);
}

TEST(JaroWinklerTest, IdenticalAndDisjoint) {
  EXPECT_DOUBLE_EQ(JaroWinkler("martha", "martha"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinkler("a", ""), 0.0);
}

TEST(JaroWinklerTest, ClassicExample) {
  // martha / marhta: jaro = 0.944..., winkler with prefix 3 = 0.961...
  EXPECT_NEAR(JaroWinkler("martha", "marhta"), 0.9611, 1e-3);
}

TEST(JaroWinklerTest, PrefixBoostsScore) {
  const double with_prefix = JaroWinkler("prefixab", "prefixcd");
  const double without = JaroWinkler("abprefix", "cdprefix");
  EXPECT_GT(with_prefix, without);
}

TEST(TokenJaccardTest, TokenSets) {
  EXPECT_DOUBLE_EQ(TokenJaccard("a b c", "a b c"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "c d"), 0.0);
  EXPECT_NEAR(TokenJaccard("a b c", "b c d"), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(TokenJaccard("", ""), 1.0);
}

TEST(TokenJaccardTest, DuplicateTokensAreASet) {
  EXPECT_DOUBLE_EQ(TokenJaccard("a a a", "a"), 1.0);
}

TEST(SplitTokensTest, HandlesWhitespaceRuns) {
  EXPECT_EQ(SplitTokens("  foo   bar  "),
            (std::vector<std::string>{"foo", "bar"}));
  EXPECT_TRUE(SplitTokens("   ").empty());
}

TEST(PrefixSimilarityTest, Basics) {
  EXPECT_DOUBLE_EQ(PrefixSimilarity("abcdef", "abcxyz"), 0.5);
  EXPECT_DOUBLE_EQ(PrefixSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(PrefixSimilarity("a", "b"), 0.0);
  EXPECT_DOUBLE_EQ(PrefixSimilarity("", ""), 1.0);
}

TEST(SimilarityVectorTest, DimensionControl) {
  EXPECT_EQ(SimilarityVector("a", "b", 1).size(), 1u);
  EXPECT_EQ(SimilarityVector("a", "b", 5).size(), 5u);
}

TEST(SimilarityVectorTest, AllMetricsInUnitRange) {
  const auto v = SimilarityVector("acme laptop pro x123",
                                  "acme lptop pro x123", 5);
  for (const double s : v) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(SimilarityVectorTest, SimilarPairDominatesDissimilarPair) {
  // The monotone-classification premise: a clearly-more-similar pair has
  // coordinate-wise >= scores.
  const auto close = SimilarityVector("globex router max", "globex router ma");
  const auto far = SimilarityVector("globex router max", "stark drone mini");
  for (size_t i = 0; i < close.size(); ++i) {
    EXPECT_GE(close[i], far[i]) << "metric " << i;
  }
}

}  // namespace
}  // namespace monoclass
