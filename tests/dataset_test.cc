// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.

#include "core/dataset.h"

#include <gtest/gtest.h>

namespace monoclass {
namespace {

TEST(PointSetTest, EmptySet) {
  const PointSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.dimension(), 0u);
}

TEST(PointSetTest, AddEstablishesDimension) {
  PointSet set;
  set.Add(Point{1, 2});
  EXPECT_EQ(set.dimension(), 2u);
  EXPECT_EQ(set.size(), 1u);
  set.Add(Point{3, 4});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set[1], (Point{3, 4}));
}

TEST(PointSetTest, DimensionMismatchAborts) {
  PointSet set;
  set.Add(Point{1, 2});
  EXPECT_DEATH(set.Add(Point{1, 2, 3}), "");
}

TEST(PointSetTest, VectorConstructorValidates) {
  const PointSet set({Point{1, 2}, Point{3, 4}});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_DEATH(PointSet({Point{1}, Point{1, 2}}), "");
}

TEST(PointSetTest, Subset) {
  const PointSet set({Point{0}, Point{1}, Point{2}, Point{3}});
  const PointSet subset = set.Subset({3, 1});
  ASSERT_EQ(subset.size(), 2u);
  EXPECT_EQ(subset[0], Point{3});
  EXPECT_EQ(subset[1], Point{1});
}

TEST(LabeledPointSetTest, Basics) {
  LabeledPointSet set;
  set.Add(Point{1}, 1);
  set.Add(Point{2}, 0);
  set.Add(Point{3}, 1);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.label(0), 1);
  EXPECT_EQ(set.label(1), 0);
  EXPECT_EQ(set.CountPositive(), 2u);
}

TEST(LabeledPointSetTest, RejectsNonBinaryLabels) {
  LabeledPointSet set;
  EXPECT_DEATH(set.Add(Point{1}, 2), "");
}

TEST(LabeledPointSetTest, Subset) {
  LabeledPointSet set;
  set.Add(Point{1}, 1);
  set.Add(Point{2}, 0);
  const LabeledPointSet subset = set.Subset({1});
  ASSERT_EQ(subset.size(), 1u);
  EXPECT_EQ(subset.label(0), 0);
}

TEST(WeightedPointSetTest, UnitWeightsMatchLabeledSet) {
  LabeledPointSet labeled;
  labeled.Add(Point{1, 1}, 1);
  labeled.Add(Point{2, 2}, 0);
  const WeightedPointSet weighted = WeightedPointSet::UnitWeights(labeled);
  ASSERT_EQ(weighted.size(), 2u);
  EXPECT_DOUBLE_EQ(weighted.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(weighted.weight(1), 1.0);
  EXPECT_DOUBLE_EQ(weighted.TotalWeight(), 2.0);
}

TEST(WeightedPointSetTest, RejectsNonPositiveWeights) {
  WeightedPointSet set;
  EXPECT_DEATH(set.Add(Point{1}, 0, 0.0), "");
  EXPECT_DEATH(set.Add(Point{1}, 0, -1.0), "");
}

TEST(WeightedPointSetTest, AppendConcatenates) {
  WeightedPointSet a;
  a.Add(Point{1}, 0, 2.0);
  WeightedPointSet b;
  b.Add(Point{2}, 1, 3.0);
  b.Add(Point{3}, 0, 4.0);
  a.Append(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.TotalWeight(), 9.0);
  EXPECT_EQ(a.label(1), 1);
}

TEST(WeightedPointSetTest, SubsetKeepsWeights) {
  WeightedPointSet set;
  set.Add(Point{1}, 0, 2.0);
  set.Add(Point{2}, 1, 3.0);
  const WeightedPointSet subset = set.Subset({1});
  ASSERT_EQ(subset.size(), 1u);
  EXPECT_DOUBLE_EQ(subset.weight(0), 3.0);
}

}  // namespace
}  // namespace monoclass
