// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// LatencyHistogram (obs/latency_histogram.h): log-bucketed geometry,
// exactness at bucket boundaries, merge associativity, and quantile
// agreement against a sorted-reference oracle on large samples.

#include "obs/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace monoclass {
namespace obs {
namespace {

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_TRUE(std::isinf(h.Min()));
  EXPECT_TRUE(std::isinf(-h.Max()));
}

TEST(LatencyHistogramTest, SingleObservationIsExact) {
  LatencyHistogram h;
  h.Observe(42.0);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Min(), 42.0);
  EXPECT_EQ(h.Max(), 42.0);
  // Every quantile of a single sample collapses onto the exact value via
  // the [Min(), Max()] clamp, regardless of bucket width.
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 42.0) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, BucketBoundariesAreExact) {
  // A power of two with a zero mantissa tail lands exactly on a bucket
  // lower bound; the round-trip through BucketIndex must return a bound
  // that brackets the value tightly (within one sub-bucket).
  for (const double value : {0.0625, 0.5, 1.0, 2.0, 1024.0, 1048576.0}) {
    const int index = LatencyHistogram::BucketIndex(value);
    EXPECT_GE(value, LatencyHistogram::BucketLowerBound(index))
        << "value=" << value;
    EXPECT_LT(value, LatencyHistogram::BucketUpperBound(index))
        << "value=" << value;
  }
}

TEST(LatencyHistogramTest, BucketIndexIsMonotone) {
  int previous = -1;
  for (double value = 0.0625; value < 1e9; value *= 1.037) {
    const int index = LatencyHistogram::BucketIndex(value);
    EXPECT_GE(index, previous) << "value=" << value;
    previous = index;
  }
}

TEST(LatencyHistogramTest, RelativeErrorBoundedBySubBucketWidth) {
  // The contract that makes p99s trustworthy: any reported quantile is
  // within one sub-bucket's relative width (1/32) of the exact value.
  LatencyHistogram h;
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) {
    const double v = std::exp(rng.UniformDouble() * 12.0);  // ~[1, 1.6e5]
    values.push_back(v);
    h.Observe(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const size_t rank = std::min(
        values.size() - 1,
        static_cast<size_t>(std::ceil(q * values.size())) - 1);
    const double exact = values[rank];
    const double approx = h.Quantile(q);
    EXPECT_NEAR(approx, exact, exact / 32.0 + 1e-9) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MillionSampleQuantilesAgreeWithSortedReference) {
  LatencyHistogram h;
  Rng rng(20260808);
  std::vector<double> values;
  values.reserve(1000000);
  for (int i = 0; i < 1000000; ++i) {
    // Mixture shaped like real latencies: a tight mode plus a heavy tail.
    const double v = rng.Bernoulli(0.95)
                         ? 50.0 + 10.0 * rng.UniformDouble()
                         : std::exp(6.0 + 6.0 * rng.UniformDouble());
    values.push_back(v);
    h.Observe(v);
  }
  EXPECT_EQ(h.Count(), 1000000u);
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const size_t rank = std::min(
        values.size() - 1,
        static_cast<size_t>(std::ceil(q * values.size())) - 1);
    const double exact = values[rank];
    EXPECT_NEAR(h.Quantile(q), exact, exact / 32.0 + 1e-9) << "q=" << q;
  }
  EXPECT_EQ(h.Min(), values.front());
  EXPECT_EQ(h.Max(), values.back());
}

TEST(LatencyHistogramTest, MergeMatchesCombinedObservation) {
  LatencyHistogram separate_a;
  LatencyHistogram separate_b;
  LatencyHistogram combined;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double v = std::exp(rng.UniformDouble() * 10.0);
    (i % 2 == 0 ? separate_a : separate_b).Observe(v);
    combined.Observe(v);
  }
  separate_a.Merge(separate_b);
  EXPECT_EQ(separate_a.Count(), combined.Count());
  EXPECT_DOUBLE_EQ(separate_a.Sum(), combined.Sum());
  EXPECT_EQ(separate_a.Min(), combined.Min());
  EXPECT_EQ(separate_a.Max(), combined.Max());
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(separate_a.Quantile(q), combined.Quantile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MergeIsAssociative) {
  // (a + b) + c and a + (b + c) must agree bucket for bucket; quantiles
  // and moments are a full proxy for that.
  LatencyHistogram a1, b1, c1, a2, b2, c2;
  auto gen = [](Rng& rng, LatencyHistogram& h, int n, double scale) {
    for (int i = 0; i < n; ++i) {
      h.Observe(scale * (1.0 + rng.UniformDouble()));
    }
  };
  Rng rng1(17), rng2(17);
  gen(rng1, a1, 1000, 1.0);
  gen(rng1, b1, 500, 100.0);
  gen(rng1, c1, 250, 10000.0);
  gen(rng2, a2, 1000, 1.0);
  gen(rng2, b2, 500, 100.0);
  gen(rng2, c2, 250, 10000.0);
  // left: (a1 + b1) + c1
  a1.Merge(b1);
  a1.Merge(c1);
  // right: a2 + (b2 + c2)
  b2.Merge(c2);
  a2.Merge(b2);
  EXPECT_EQ(a1.Count(), a2.Count());
  EXPECT_DOUBLE_EQ(a1.Sum(), a2.Sum());
  EXPECT_EQ(a1.Min(), a2.Min());
  EXPECT_EQ(a1.Max(), a2.Max());
  for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a1.Quantile(q), a2.Quantile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Observe(10.0);
  h.Observe(20.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 0.0);
  h.Observe(5.0);
  EXPECT_EQ(h.Quantile(0.5), 5.0);
}

TEST(LatencyHistogramTest, UnderflowAndOverflowBuckets) {
  LatencyHistogram h;
  h.Observe(1e-9);  // below the smallest octave -> underflow bucket
  h.Observe(1e12);  // beyond the largest octave -> overflow bucket
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.Min(), 1e-9);
  EXPECT_EQ(h.Max(), 1e12);
  // Quantiles stay finite and clamped to the observed range.
  EXPECT_GE(h.Quantile(0.5), 1e-9);
  EXPECT_LE(h.Quantile(0.999), 1e12);
}

TEST(LatencyHistogramTest, NegativeAndZeroGoToUnderflow) {
  LatencyHistogram h;
  h.Observe(0.0);
  h.Observe(-3.0);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_LE(h.Quantile(0.5), 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace monoclass
