// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// End-to-end integration tests across every layer: the full active
// pipeline (chain decomposition -> per-chain sampling -> passive flow
// solve on Sigma) against ground-truth optima on realistic workloads, and
// the paper's Theorem 3 composition claim that the passive solver is the
// only exact-solve step the active algorithm needs.

#include <gtest/gtest.h>

#include "active/baselines.h"
#include "active/multi_d.h"
#include "active/oracle.h"
#include "core/antichain.h"
#include "data/entity_matching.h"
#include "data/synthetic.h"
#include "passive/flow_solver.h"
#include "util/random.h"

namespace monoclass {
namespace {

TEST(IntegrationTest, EntityMatchingActivePipeline) {
  EntityMatchingOptions data_options;
  data_options.num_pairs = 1500;
  data_options.typo_rate = 0.15;
  data_options.seed = 3;
  const EntityMatchingInstance instance =
      GenerateEntityMatching(data_options);
  const size_t optimum = OptimalError(instance.data);

  InMemoryOracle oracle(instance.data);
  ActiveSolveOptions options;
  options.sampling = ActiveSamplingParams::Practical(0.5, 0.05);
  options.seed = 12;
  const auto result =
      SolveActiveMultiD(instance.data.points(), oracle, options);

  const size_t error = CountErrors(result.classifier, instance.data);
  EXPECT_GE(error, optimum);
  // Loose integration bar (the statistical guarantee is covered by the
  // dedicated trials in multi_d_test): within 2x + slack of optimal.
  EXPECT_LE(error, 2 * optimum + 20);
  EXPECT_LE(result.probes, instance.data.size());
}

TEST(IntegrationTest, ActiveMatchesPassiveWhenProbingEverything) {
  // With Paper constants every level full-probes, so the active pipeline
  // must reproduce the exact passive optimum.
  EntityMatchingOptions data_options;
  data_options.num_pairs = 300;
  data_options.seed = 7;
  const EntityMatchingInstance instance =
      GenerateEntityMatching(data_options);
  const size_t optimum = OptimalError(instance.data);

  InMemoryOracle oracle(instance.data);
  ActiveSolveOptions options;
  options.sampling = ActiveSamplingParams::Paper(0.5, 0.01);
  const auto result =
      SolveActiveMultiD(instance.data.points(), oracle, options);
  EXPECT_EQ(CountErrors(result.classifier, instance.data), optimum);
  EXPECT_EQ(result.probes, instance.data.size());
}

TEST(IntegrationTest, HeadToHeadOrderingOnNoisyWideInstance) {
  ChainInstanceOptions data_options;
  data_options.num_chains = 10;
  data_options.chain_length = 4096;
  data_options.noise_per_chain = 30;
  data_options.seed = 11;
  const ChainInstance instance = GenerateChainInstance(data_options);
  const size_t n = instance.data.size();

  InMemoryOracle oracle_ours(instance.data);
  ActiveSolveOptions ours_options;
  ours_options.sampling = ActiveSamplingParams::Practical(1.0, 0.05);
  ours_options.precomputed_chains = instance.chains;
  const auto ours =
      SolveActiveMultiD(instance.data.points(), oracle_ours, ours_options);

  InMemoryOracle oracle_tao(instance.data);
  Tao18Options tao_options;
  tao_options.precomputed_chains = instance.chains;
  const auto tao =
      SolveTao18(instance.data.points(), oracle_tao, tao_options);

  InMemoryOracle oracle_all(instance.data);
  const auto all = SolveProbeAll(instance.data.points(), oracle_all);

  // Probe ordering: tao18 << ours < probe-all = n.
  EXPECT_LT(tao.probes, ours.probes);
  EXPECT_LT(ours.probes, n);
  EXPECT_EQ(all.probes, n);

  // Error ordering: probe-all = k* <= ours <= tao (on average; allow
  // equality and small slack for this single seed).
  const size_t k_star = CountErrors(all.classifier, instance.data);
  EXPECT_EQ(k_star, OptimalError(instance.data));
  EXPECT_GE(CountErrors(ours.classifier, instance.data), k_star);
}

TEST(IntegrationTest, WidthOneInstanceDegeneratesToOneD) {
  // A totally ordered multi-d instance: width 1, single chain, so the
  // multi-d solver is exactly the 1D solver.
  LabeledPointSet set;
  for (size_t i = 0; i < 2000; ++i) {
    const double t = static_cast<double>(i);
    set.Add(Point{t, 2.0 * t, t + 1.0}, i >= 1200 ? 1 : 0);
  }
  EXPECT_EQ(DominanceWidth(set.points()), 1u);
  InMemoryOracle oracle(set);
  ActiveSolveOptions options;
  options.sampling = ActiveSamplingParams::Practical(0.5, 0.05);
  const auto result = SolveActiveMultiD(set.points(), oracle, options);
  EXPECT_EQ(result.num_chains, 1u);
  EXPECT_EQ(CountErrors(result.classifier, set), 0u);
  EXPECT_LT(result.probes, set.size());
}

TEST(IntegrationTest, PassiveSolverHandlesSigmaStyleInputs) {
  // Sigma sets have wildly varying weights; make sure the flow solver's
  // effective-infinity logic stays sound there (weights up to ~n).
  WeightedPointSet set;
  Rng rng(17);
  for (size_t i = 0; i < 200; ++i) {
    set.Add(Point{rng.UniformDouble(), rng.UniformDouble()},
            rng.Bernoulli(0.5) ? 1 : 0,
            rng.UniformDoubleInRange(0.1, 500.0));
  }
  const auto result = SolvePassiveWeighted(set);
  EXPECT_TRUE(IsMonotoneAssignment(set.points(), result.assignment));
  EXPECT_NEAR(result.optimal_weighted_error, result.flow_value, 1e-6);
}

TEST(IntegrationTest, EndToEndOnPlantedHighDimensional) {
  PlantedOptions data_options;
  data_options.num_points = 1200;
  data_options.dimension = 6;
  data_options.noise_flips = 30;
  data_options.seed = 19;
  const PlantedInstance instance = GeneratePlanted(data_options);
  const size_t optimum = OptimalError(instance.data);

  InMemoryOracle oracle(instance.data);
  ActiveSolveOptions options;
  options.sampling = ActiveSamplingParams::Practical(1.0, 0.1);
  const auto result =
      SolveActiveMultiD(instance.data.points(), oracle, options);
  const size_t error = CountErrors(result.classifier, instance.data);
  EXPECT_GE(error, optimum);
  EXPECT_LE(error, 2 * optimum + 20);
}

}  // namespace
}  // namespace monoclass
