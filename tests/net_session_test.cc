// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Session lifecycle tests. The load-bearing claim (see net/session.h)
// is that a solve driven through Step() round-trips -- including
// interrupted, partially-answered round-trips -- is bit-for-bit the
// solve an uninterrupted SolveActiveMultiD would produce over the same
// (points, seed). The eviction tests use an injected fake clock so TTL
// expiry needs no sleeping.

#include "net/session.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "active/multi_d.h"
#include "active/oracle.h"
#include "active/params.h"
#include "data/synthetic.h"
#include "net/wire.h"
#include "test_util.h"
#include "util/concurrency.h"

namespace monoclass {
namespace net {
namespace {

LabeledPointSet MakeInstance(size_t n, uint64_t seed) {
  PlantedOptions options;
  options.num_points = n;
  options.dimension = 2;
  options.noise_flips = n / 10;
  options.seed = seed;
  return GeneratePlanted(options).data;
}

SessionOptions MakeOptions(uint64_t seed) {
  SessionOptions options;
  options.seed = seed;
  options.epsilon = 0.5;
  options.delta = 0.01;
  return options;
}

// The uninterrupted reference: same params Session::Step uses.
ActiveSolveResult ReferenceSolve(const LabeledPointSet& instance,
                                 uint64_t seed) {
  InMemoryOracle oracle(instance);
  ActiveSolveOptions options;
  options.sampling = ActiveSamplingParams::Practical(0.5, 0.01);
  options.seed = seed;
  options.parallel.threads = 1;
  return SolveActiveMultiD(instance.points(), oracle, options);
}

// Drives `session` to completion, answering every probe fully.
ActiveSolveResult DriveToCompletion(Session& session,
                                    const LabeledPointSet& instance) {
  Session::StepOutcome outcome = session.Step({}, {});
  while (!outcome.done) {
    std::vector<uint8_t> labels(outcome.probe_indices.size());
    for (size_t i = 0; i < outcome.probe_indices.size(); ++i) {
      labels[i] =
          instance.label(static_cast<size_t>(outcome.probe_indices[i]));
    }
    outcome = session.Step(outcome.probe_indices, labels);
  }
  return outcome.result;
}

TEST(SessionTest, SteppedSolveIsBitForBitTheUninterruptedSolve) {
  for (const uint64_t seed : {1u, 7u, 1234u}) {
    const LabeledPointSet instance = MakeInstance(80, seed * 31);
    const ActiveSolveResult reference = ReferenceSolve(instance, seed);

    Session session(instance.points(), MakeOptions(seed));
    const ActiveSolveResult served = DriveToCompletion(session, instance);

    EXPECT_EQ(served.classifier.generators(),
              reference.classifier.generators())
        << "seed=" << seed;
    EXPECT_EQ(served.probes, reference.probes) << "seed=" << seed;
    EXPECT_EQ(served.num_chains, reference.num_chains) << "seed=" << seed;
  }
}

TEST(SessionTest, ProbeBatchesNeverRepeatAnsweredIndices) {
  const LabeledPointSet instance = MakeInstance(60, 3);
  Session session(instance.points(), MakeOptions(5));
  std::set<uint64_t> answered;
  Session::StepOutcome outcome = session.Step({}, {});
  while (!outcome.done) {
    std::set<uint64_t> batch(outcome.probe_indices.begin(),
                             outcome.probe_indices.end());
    EXPECT_EQ(batch.size(), outcome.probe_indices.size())
        << "duplicate index inside one batch";
    for (const uint64_t index : outcome.probe_indices) {
      EXPECT_EQ(answered.count(index), 0u)
          << "server re-requested answered index " << index;
      answered.insert(index);
    }
    std::vector<uint8_t> labels(outcome.probe_indices.size());
    for (size_t i = 0; i < outcome.probe_indices.size(); ++i) {
      labels[i] =
          instance.label(static_cast<size_t>(outcome.probe_indices[i]));
    }
    outcome = session.Step(outcome.probe_indices, labels);
  }
  EXPECT_EQ(answered.size(), session.NumKnownLabels());
}

TEST(SessionTest, PartialAnswersResumeToIdenticalResult) {
  const uint64_t seed = 11;
  const LabeledPointSet instance = MakeInstance(80, 17);
  const ActiveSolveResult reference = ReferenceSolve(instance, seed);

  // Answer only the first half of every batch; the session must re-issue
  // the remainder and still converge to the identical solve.
  Session session(instance.points(), MakeOptions(seed));
  Session::StepOutcome outcome = session.Step({}, {});
  size_t round = 0;
  while (!outcome.done) {
    std::vector<uint64_t> indices = outcome.probe_indices;
    if (round % 2 == 0 && indices.size() > 1) {
      indices.resize(indices.size() / 2);
    }
    std::vector<uint8_t> labels(indices.size());
    for (size_t i = 0; i < indices.size(); ++i) {
      labels[i] = instance.label(static_cast<size_t>(indices[i]));
    }
    outcome = session.Step(indices, labels);
    ++round;
  }
  EXPECT_EQ(outcome.result.classifier.generators(),
            reference.classifier.generators());
  EXPECT_EQ(outcome.result.probes, reference.probes);
}

TEST(SessionTest, EmptyAnswerSetResendsThePendingBatch) {
  const LabeledPointSet instance = MakeInstance(60, 23);
  Session session(instance.points(), MakeOptions(3));
  Session::StepOutcome first = session.Step({}, {});
  ASSERT_FALSE(first.done);
  // A client that lost the response resumes with no answers: the same
  // batch must come back (replay determinism).
  const Session::StepOutcome resent = session.Step({}, {});
  EXPECT_EQ(resent.probe_indices, first.probe_indices);
}

TEST(SessionTest, RejectsBadAnswers) {
  const LabeledPointSet instance = MakeInstance(20, 29);
  Session session(instance.points(), MakeOptions(3));
  EXPECT_THROW(session.Step({instance.size() + 5}, {1}), WireError);
  EXPECT_THROW(session.Step({0}, {2}), WireError);
  EXPECT_THROW(session.Step({0, 1}, {1}), WireError);  // size mismatch
}

TEST(SessionTest, RejectsEmptyPointSetAndUnknownAlgorithm) {
  EXPECT_THROW(Session(PointSet(), MakeOptions(1)), WireError);
  SessionOptions bad = MakeOptions(1);
  bad.algorithm = 99;
  EXPECT_THROW(Session(MakeInstance(8, 1).points(), bad), WireError);
}

// ------------------------------------------------------------- manager

TEST(SessionManagerTest, ConcurrentSessionsAreBitIdenticalPerSession) {
  // The serving claim: concurrency across sessions never leaks into any
  // single session's solve. Run the same 12 sessions under managers
  // stepped by 1, 2 and 8 threads; every session's result must be
  // bit-identical to its own single-threaded reference.
  constexpr size_t kSessions = 12;
  std::vector<LabeledPointSet> instances;
  std::vector<ActiveSolveResult> references;
  for (size_t i = 0; i < kSessions; ++i) {
    instances.push_back(MakeInstance(48 + 8 * (i % 3), 100 + i));
    references.push_back(ReferenceSolve(instances[i], 1000 + i));
  }

  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SessionManager manager(SessionManager::Config{});
    std::vector<uint64_t> ids(kSessions);
    std::vector<Session::StepOutcome> outcomes(kSessions);
    for (size_t i = 0; i < kSessions; ++i) {
      ids[i] = manager.Open(instances[i].points(), MakeOptions(1000 + i),
                            &outcomes[i]);
    }
    // Worker w drives sessions w, w+threads, ... to completion.
    std::vector<mc::thread> workers;
    for (size_t w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        for (size_t i = w; i < kSessions; i += threads) {
          Session::StepOutcome outcome = outcomes[i];
          while (!outcome.done) {
            std::vector<uint8_t> labels(outcome.probe_indices.size());
            for (size_t k = 0; k < outcome.probe_indices.size(); ++k) {
              labels[k] = instances[i].label(
                  static_cast<size_t>(outcome.probe_indices[k]));
            }
            const SessionManager::StepStatus status = manager.Step(
                ids[i], outcome.probe_indices, labels, &outcome);
            ASSERT_EQ(status, SessionManager::StepStatus::kOk);
          }
          outcomes[i] = outcome;
        }
      });
    }
    for (mc::thread& worker : workers) worker.join();

    for (size_t i = 0; i < kSessions; ++i) {
      EXPECT_EQ(outcomes[i].result.classifier.generators(),
                references[i].classifier.generators())
          << "threads=" << threads << " session=" << i;
      EXPECT_EQ(outcomes[i].result.probes, references[i].probes)
          << "threads=" << threads << " session=" << i;
    }
    // Completion retires every session.
    EXPECT_EQ(manager.NumActive(), 0u);
    EXPECT_EQ(manager.ResidentPoints(), 0u);
  }
}

TEST(SessionManagerTest, AbandonedSessionsExpireAndFreeState) {
  int64_t fake_now = 0;
  SessionManager::Config config;
  config.ttl_ms = 1000;
  SessionManager manager(config, [&fake_now] { return fake_now; });

  const LabeledPointSet instance = MakeInstance(40, 7);
  Session::StepOutcome outcome;
  const uint64_t id =
      manager.Open(instance.points(), MakeOptions(2), &outcome);
  ASSERT_FALSE(outcome.done);
  EXPECT_EQ(manager.NumActive(), 1u);
  EXPECT_EQ(manager.ResidentPoints(), instance.size());

  // Touch within the TTL: stays alive.
  fake_now = 900;
  EXPECT_EQ(manager.EvictExpired(), 0u);
  EXPECT_EQ(manager.Step(id, {}, {}, &outcome),
            SessionManager::StepStatus::kOk);

  // Abandon past the TTL: evicted, memory freed, id forgotten.
  fake_now = 2000;
  EXPECT_EQ(manager.EvictExpired(), 1u);
  EXPECT_EQ(manager.NumActive(), 0u);
  EXPECT_EQ(manager.ResidentPoints(), 0u);
  EXPECT_EQ(manager.Step(id, {}, {}, &outcome),
            SessionManager::StepStatus::kUnknownSession);
}

TEST(SessionManagerTest, TtlZeroDisablesExpiry) {
  int64_t fake_now = 0;
  SessionManager::Config config;
  config.ttl_ms = 0;
  SessionManager manager(config, [&fake_now] { return fake_now; });
  const LabeledPointSet instance = MakeInstance(24, 13);
  Session::StepOutcome outcome;
  manager.Open(instance.points(), MakeOptions(2), &outcome);
  fake_now = int64_t{1} << 40;
  EXPECT_EQ(manager.EvictExpired(), 0u);
  EXPECT_EQ(manager.NumActive(), 1u);
}

TEST(SessionManagerTest, CapacityEvictsLeastRecentlyTouched) {
  int64_t fake_now = 0;
  SessionManager::Config config;
  config.capacity = 2;
  config.ttl_ms = 0;
  SessionManager manager(config, [&fake_now] { return fake_now; });
  const LabeledPointSet instance = MakeInstance(24, 19);

  Session::StepOutcome outcome;
  const uint64_t first =
      manager.Open(instance.points(), MakeOptions(2), &outcome);
  fake_now = 10;
  const uint64_t second =
      manager.Open(instance.points(), MakeOptions(3), &outcome);
  fake_now = 20;
  // Touch `first` so `second` becomes the LRU victim.
  ASSERT_EQ(manager.Step(first, {}, {}, &outcome),
            SessionManager::StepStatus::kOk);
  fake_now = 30;
  manager.Open(instance.points(), MakeOptions(4), &outcome);
  EXPECT_EQ(manager.NumActive(), 2u);
  EXPECT_EQ(manager.Step(second, {}, {}, &outcome),
            SessionManager::StepStatus::kUnknownSession);
  EXPECT_EQ(manager.Step(first, {}, {}, &outcome),
            SessionManager::StepStatus::kOk);
}

TEST(SessionManagerTest, CloseFreesAndForgets) {
  SessionManager manager(SessionManager::Config{});
  const LabeledPointSet instance = MakeInstance(24, 31);
  Session::StepOutcome outcome;
  const uint64_t id =
      manager.Open(instance.points(), MakeOptions(2), &outcome);
  EXPECT_TRUE(manager.Close(id));
  EXPECT_FALSE(manager.Close(id));
  EXPECT_EQ(manager.NumActive(), 0u);
  EXPECT_EQ(manager.ResidentPoints(), 0u);
}

}  // namespace
}  // namespace net
}  // namespace monoclass
