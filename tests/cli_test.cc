// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// End-to-end smoke tests of the monoclass_cli binary: stats /
// solve-passive / solve-active / classify round trips on the committed
// Figure 1 CSV, plus error paths. The binary path and test-data path are
// injected by CMake compile definitions.

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace monoclass {
namespace {

#ifndef MONOCLASS_CLI_PATH
#error "MONOCLASS_CLI_PATH must be defined by the build"
#endif
#ifndef MONOCLASS_TESTDATA_DIR
#error "MONOCLASS_TESTDATA_DIR must be defined by the build"
#endif

std::string CliPath() { return MONOCLASS_CLI_PATH; }
std::string Figure1Csv() {
  return std::string(MONOCLASS_TESTDATA_DIR) + "/figure1.csv";
}

// Runs a command, returning {exit code, captured stdout}.
std::pair<int, std::string> RunCommand(const std::string& command) {
  FILE* pipe = popen((command + " 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) return {-1, ""};
  std::string output;
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    output += buffer;
  }
  const int status = pclose(pipe);
  return {WEXITSTATUS(status), output};
}

TEST(CliTest, StatsReportsPaperFacts) {
  const auto [code, output] =
      RunCommand(CliPath() + " stats " + Figure1Csv());
  EXPECT_EQ(code, 0);
  EXPECT_NE(output.find("points:        16"), std::string::npos) << output;
  EXPECT_NE(output.find("width w:       6"), std::string::npos) << output;
  EXPECT_NE(output.find("optimal k*:    3"), std::string::npos) << output;
  EXPECT_NE(output.find("contending:    10"), std::string::npos) << output;
}

TEST(CliTest, SolvePassiveAndClassifyRoundTrip) {
  const std::string model = ::testing::TempDir() + "/cli_model.txt";
  const auto [solve_code, solve_output] = RunCommand(
      CliPath() + " solve-passive " + Figure1Csv() + " --out " + model);
  EXPECT_EQ(solve_code, 0);
  EXPECT_NE(solve_output.find("optimal error k* = 3"), std::string::npos)
      << solve_output;

  const auto [classify_code, classify_output] =
      RunCommand(CliPath() + " classify " + model + " " + Figure1Csv());
  EXPECT_EQ(classify_code, 0);
  // 16 points, 3 errors -> tp + tn = 13.
  EXPECT_NE(classify_output.find("tp="), std::string::npos);
  std::remove(model.c_str());
}

TEST(CliTest, SolveActiveReportsProbesAndWidth) {
  const auto [code, output] = RunCommand(
      CliPath() + " solve-active " + Figure1Csv() +
      " --epsilon 0.5 --delta 0.05 --seed 3");
  EXPECT_EQ(code, 0);
  EXPECT_NE(output.find("width w        = 6"), std::string::npos) << output;
  EXPECT_NE(output.find("achieved error = 3"), std::string::npos) << output;
}

TEST(CliTest, UsageOnBadInvocation) {
  EXPECT_NE(RunCommand(CliPath()).first, 0);
  EXPECT_NE(RunCommand(CliPath() + " frobnicate x").first, 0);
}

TEST(CliTest, MissingFileFails) {
  const auto [code, output] =
      RunCommand(CliPath() + " stats /nonexistent/file.csv");
  EXPECT_NE(code, 0);
}

TEST(CliTest, SolveActiveRequiresEpsilon) {
  const auto [code, output] =
      RunCommand(CliPath() + " solve-active " + Figure1Csv());
  EXPECT_NE(code, 0);
}

}  // namespace
}  // namespace monoclass
