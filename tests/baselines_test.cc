// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the baseline active algorithms (probe-all, Tao'18-style,
// A^2-style): probe accounting, error behaviour on clean and noisy
// instances, and the head-to-head ordering the paper predicts.

#include "active/baselines.h"

#include <cmath>

#include <gtest/gtest.h>

#include "active/oracle.h"
#include "core/paper_example.h"
#include "data/synthetic.h"
#include "passive/flow_solver.h"

namespace monoclass {
namespace {

TEST(ProbeAllTest, ProbesEverythingAndIsOptimal) {
  const LabeledPointSet set = PaperFigure1Points();
  InMemoryOracle oracle(set);
  const auto result = SolveProbeAll(set.points(), oracle);
  EXPECT_EQ(result.probes, 16u);
  EXPECT_EQ(CountErrors(result.classifier, set), 3u);  // k* exactly
}

TEST(ProbeAllTest, ZeroNoiseIsZeroError) {
  ChainInstanceOptions options;
  options.num_chains = 4;
  options.chain_length = 64;
  options.seed = 3;
  const ChainInstance instance = GenerateChainInstance(options);
  InMemoryOracle oracle(instance.data);
  const auto result = SolveProbeAll(instance.data.points(), oracle);
  EXPECT_EQ(CountErrors(result.classifier, instance.data), 0u);
}

TEST(Tao18Test, CleanChainsAreRecoveredWithLogProbes) {
  ChainInstanceOptions options;
  options.num_chains = 6;
  options.chain_length = 1024;
  options.noise_per_chain = 0;
  options.seed = 5;
  const ChainInstance instance = GenerateChainInstance(options);
  InMemoryOracle oracle(instance.data);
  Tao18Options tao;
  tao.precomputed_chains = instance.chains;
  const auto result = SolveTao18(instance.data.points(), oracle, tao);
  // Noiseless binary search is exact.
  EXPECT_EQ(CountErrors(result.classifier, instance.data), 0u);
  // O(w log(n/w)): 6 chains x ~2*log2(1024) with random pivots; generous cap.
  EXPECT_LE(result.probes, 6u * 40u);
}

TEST(Tao18Test, ProbeCountScalesWithChains) {
  size_t previous = 0;
  for (const size_t w : {2u, 8u}) {
    ChainInstanceOptions options;
    options.num_chains = w;
    options.chain_length = 512;
    options.seed = 7;
    const ChainInstance instance = GenerateChainInstance(options);
    InMemoryOracle oracle(instance.data);
    Tao18Options tao;
    tao.precomputed_chains = instance.chains;
    const auto result = SolveTao18(instance.data.points(), oracle, tao);
    EXPECT_GT(result.probes, previous);
    previous = result.probes;
  }
}

TEST(Tao18Test, NoisyInstanceStaysWithinSmallFactorOfOptimum) {
  ChainInstanceOptions options;
  options.num_chains = 4;
  options.chain_length = 1000;
  options.noise_per_chain = 30;
  options.seed = 9;
  const ChainInstance instance = GenerateChainInstance(options);
  const size_t optimum = OptimalError(instance.data);
  ASSERT_GT(optimum, 0u);
  double total_ratio = 0.0;
  const int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    InMemoryOracle oracle(instance.data);
    Tao18Options tao;
    tao.seed = static_cast<uint64_t>(trial) + 1;
    tao.precomputed_chains = instance.chains;
    const auto result = SolveTao18(instance.data.points(), oracle, tao);
    total_ratio += static_cast<double>(
                       CountErrors(result.classifier, instance.data)) /
                   static_cast<double>(optimum);
  }
  // The 2-approximation is an *expected* bound in [25]; empirically the
  // mean ratio sits well under 3 on this noise level.
  EXPECT_LE(total_ratio / kTrials, 3.0);
}

TEST(Tao18Test, RepetitionsReduceErrorOnAverage) {
  ChainInstanceOptions options;
  options.num_chains = 4;
  options.chain_length = 600;
  options.noise_per_chain = 60;
  options.seed = 11;
  const ChainInstance instance = GenerateChainInstance(options);
  size_t errors_single = 0;
  size_t errors_repeated = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    InMemoryOracle oracle_a(instance.data);
    Tao18Options single;
    single.seed = seed;
    single.precomputed_chains = instance.chains;
    errors_single += CountErrors(
        SolveTao18(instance.data.points(), oracle_a, single).classifier,
        instance.data);
    InMemoryOracle oracle_b(instance.data);
    Tao18Options repeated = single;
    repeated.repetitions = 5;
    errors_repeated += CountErrors(
        SolveTao18(instance.data.points(), oracle_b, repeated).classifier,
        instance.data);
  }
  EXPECT_LE(errors_repeated, errors_single + errors_single / 4);
}

TEST(ASquaredTest, CleanChainsConverge) {
  ChainInstanceOptions options;
  options.num_chains = 3;
  options.chain_length = 256;
  options.noise_per_chain = 0;
  options.seed = 13;
  const ChainInstance instance = GenerateChainInstance(options);
  InMemoryOracle oracle(instance.data);
  ASquaredOptions a2;
  a2.precomputed_chains = instance.chains;
  const auto result = SolveASquared(instance.data.points(), oracle, a2);
  EXPECT_EQ(CountErrors(result.classifier, instance.data), 0u);
}

TEST(ASquaredTest, ProbesMoreThanOurAlgorithmOnWideInputs) {
  ChainInstanceOptions options;
  options.num_chains = 12;
  options.chain_length = 4096;
  options.noise_per_chain = 15;
  options.seed = 15;
  const ChainInstance instance = GenerateChainInstance(options);

  InMemoryOracle oracle_a2(instance.data);
  ASquaredOptions a2;
  a2.epsilon = 1.0;
  a2.precomputed_chains = instance.chains;
  const auto a2_result =
      SolveASquared(instance.data.points(), oracle_a2, a2);

  InMemoryOracle oracle_ours(instance.data);
  ActiveSolveOptions ours;
  ours.sampling = ActiveSamplingParams::Practical(1.0, 0.05);
  ours.precomputed_chains = instance.chains;
  const auto ours_result =
      SolveActiveMultiD(instance.data.points(), oracle_ours, ours);

  EXPECT_GT(a2_result.probes, 2 * ours_result.probes)
      << "A^2 pays the global-VC w factor per epoch";
}

TEST(ASquaredTest, ErrorIsReasonableOnNoise) {
  ChainInstanceOptions options;
  options.num_chains = 4;
  options.chain_length = 512;
  options.noise_per_chain = 20;
  options.seed = 17;
  const ChainInstance instance = GenerateChainInstance(options);
  const size_t optimum = OptimalError(instance.data);
  InMemoryOracle oracle(instance.data);
  ASquaredOptions a2;
  a2.precomputed_chains = instance.chains;
  const auto result = SolveASquared(instance.data.points(), oracle, a2);
  EXPECT_LE(CountErrors(result.classifier, instance.data),
            3 * optimum + 10);
}

TEST(BaselineCommonTest, ClassifiersAreMonotoneByConstruction) {
  // The per-chain thresholds of Tao18/A^2 are stitched via upward closure;
  // verify monotonicity on the point set explicitly.
  ChainInstanceOptions options;
  options.num_chains = 5;
  options.chain_length = 128;
  options.noise_per_chain = 12;
  options.seed = 19;
  const ChainInstance instance = GenerateChainInstance(options);
  InMemoryOracle oracle(instance.data);
  Tao18Options tao;
  tao.precomputed_chains = instance.chains;
  const auto result = SolveTao18(instance.data.points(), oracle, tao);
  const auto values = result.classifier.ClassifySet(instance.data.points());
  EXPECT_TRUE(IsMonotoneAssignment(instance.data.points(), values));
}

}  // namespace
}  // namespace monoclass
