// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the 1D exact weighted solver, including agreement with the
// flow solver (two independent algorithms for the same problem).

#include "passive/isotonic_1d.h"

#include <limits>

#include <gtest/gtest.h>

#include "passive/flow_solver.h"
#include "util/random.h"

namespace monoclass {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Isotonic1DTest, SinglePositivePoint) {
  const auto result = Solve1DWeighted({{1.0, 1, 1.0}});
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 0.0);
  EXPECT_EQ(result.tau, -kInf);  // all-1 is optimal
}

TEST(Isotonic1DTest, SingleNegativePoint) {
  const auto result = Solve1DWeighted({{1.0, 0, 1.0}});
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 0.0);
  EXPECT_GE(result.tau, 1.0);  // threshold at/above the point
}

TEST(Isotonic1DTest, CleanSplit) {
  const auto result = Solve1DWeighted(
      {{1, 0, 1}, {2, 0, 1}, {3, 1, 1}, {4, 1, 1}});
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 0.0);
  EXPECT_DOUBLE_EQ(result.tau, 2.0);
}

TEST(Isotonic1DTest, WeightsSteerTheThreshold) {
  // One heavy inverted positive below light negatives.
  const auto result = Solve1DWeighted(
      {{1, 1, 10}, {2, 0, 1}, {3, 0, 1}});
  // all-1 errs 2 (weights 1+1); threshold >= 3 errs 10. Optimal: 2.
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 2.0);
  EXPECT_EQ(result.tau, -kInf);
}

TEST(Isotonic1DTest, TiesMoveTogether) {
  // Two points at the same coordinate with opposite labels: any threshold
  // mis-classifies exactly one of them (weights 1 and 3: best is 1).
  const auto result = Solve1DWeighted({{2, 1, 3}, {2, 0, 1}});
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 1.0);
}

TEST(Isotonic1DTest, AlternatingLabels) {
  const auto result = Solve1DWeighted(
      {{1, 1, 1}, {2, 0, 1}, {3, 1, 1}, {4, 0, 1}, {5, 1, 1}});
  // labels 1,0,1,0,1: best error is 2 (e.g. all-1).
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 2.0);
}

TEST(Isotonic1DTest, ThresholdSemanticsAreStrict) {
  // Optimal tau = 5 must classify the point at 5 as 0.
  const auto result = Solve1DWeighted({{5, 0, 1}, {6, 1, 1}});
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 0.0);
  const auto h = MonotoneClassifier::Threshold1D(result.tau);
  EXPECT_FALSE(h.Classify(Point{5}));
  EXPECT_TRUE(h.Classify(Point{6}));
}

TEST(Isotonic1DTest, AgreesWithFlowSolverOnRandomInputs) {
  Rng rng(73);
  for (int trial = 0; trial < 80; ++trial) {
    WeightedPointSet set;
    const size_t n = 1 + rng.UniformInt(30);
    for (size_t i = 0; i < n; ++i) {
      // Coarse grid to exercise ties.
      set.Add(Point{static_cast<double>(rng.UniformInt(8))},
              rng.Bernoulli(0.5) ? 1 : 0,
              rng.UniformDoubleInRange(0.5, 3.0));
    }
    const auto direct = Solve1DWeighted(ToWeighted1D(set));
    const auto flow = SolvePassiveWeighted(set);
    EXPECT_NEAR(direct.optimal_weighted_error, flow.optimal_weighted_error,
                1e-9)
        << "trial " << trial;
  }
}

TEST(Isotonic1DTest, ClassifierWrapperAchievesReportedError) {
  Rng rng(79);
  for (int trial = 0; trial < 40; ++trial) {
    WeightedPointSet set;
    const size_t n = 1 + rng.UniformInt(25);
    for (size_t i = 0; i < n; ++i) {
      set.Add(Point{rng.UniformDouble()}, rng.Bernoulli(0.4) ? 1 : 0,
              rng.UniformDoubleInRange(0.5, 2.0));
    }
    const auto points = ToWeighted1D(set);
    const auto result = Solve1DWeighted(points);
    const auto h = Solve1DWeightedClassifier(points);
    EXPECT_NEAR(WeightedError(h, set), result.optimal_weighted_error, 1e-9);
  }
}

TEST(Isotonic1DTest, RejectsEmptyInput) {
  EXPECT_DEATH(Solve1DWeighted({}), "");
}

}  // namespace
}  // namespace monoclass
