// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the metrics registry (obs/metrics.h): counter / gauge /
// histogram semantics, snapshots, JSON validity of the dump, the runtime
// enable switch, and thread safety of the hot path.

#include "obs/metrics.h"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.h"
#include "util/concurrency.h"
#include "util/json.h"

namespace monoclass {
namespace obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add(3);
  counter.Add(4);
  EXPECT_EQ(counter.Value(), 7u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, KeepsLastValue) {
  Gauge gauge;
  gauge.Set(1.5);
  gauge.Set(-2.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), -2.0);
}

TEST(HistogramTest, TracksMoments) {
  Histogram histogram;
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_TRUE(std::isinf(histogram.Min()));
  for (const double v : {1.0, 2.0, 3.0, 10.0}) histogram.Observe(v);
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 16.0);
  EXPECT_DOUBLE_EQ(histogram.Min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 10.0);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 4.0);
}

TEST(HistogramTest, BucketIndexIsLogarithmic) {
  // Bucket kBucketBias covers [1, 2).
  EXPECT_EQ(Histogram::BucketIndex(1.0), Histogram::kBucketBias);
  EXPECT_EQ(Histogram::BucketIndex(1.99), Histogram::kBucketBias);
  EXPECT_EQ(Histogram::BucketIndex(2.0), Histogram::kBucketBias + 1);
  EXPECT_EQ(Histogram::BucketIndex(1024.0), Histogram::kBucketBias + 10);
  // Non-positive values land in bucket 0.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0);
}

TEST(HistogramTest, BucketCountsSumToCount) {
  Histogram histogram;
  for (int i = 1; i <= 100; ++i) histogram.Observe(static_cast<double>(i));
  uint64_t total = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    total += histogram.BucketCount(b);
  }
  EXPECT_EQ(total, 100u);
}

TEST(MetricsRegistryTest, CreateOnDemandWithStablePointers) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* a = registry.GetCounter("test.registry.stable");
  Counter* b = registry.GetCounter("test.registry.stable");
  EXPECT_EQ(a, b);
  a->Add(5);
  EXPECT_EQ(registry.Snapshot().CounterValue("test.registry.stable"), 5u);
}

TEST(MetricsRegistryTest, SnapshotSortedAndTyped) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.snapshot.c")->Add(1);
  registry.GetGauge("test.snapshot.g")->Set(2.5);
  registry.GetHistogram("test.snapshot.h")->Observe(7.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  for (size_t i = 1; i < snapshot.samples.size(); ++i) {
    EXPECT_LE(snapshot.samples[i - 1].name, snapshot.samples[i].name);
  }
  const MetricSample* gauge = snapshot.Find("test.snapshot.g");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->kind, MetricSample::Kind::kGauge);
  EXPECT_DOUBLE_EQ(gauge->value, 2.5);
  const MetricSample* histogram = snapshot.Find("test.snapshot.h");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count, 1u);
  EXPECT_DOUBLE_EQ(histogram->sum, 7.0);
  EXPECT_EQ(snapshot.Find("test.snapshot.missing"), nullptr);
}

TEST(MetricsRegistryTest, ResetAllZeroesWithoutInvalidating) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.reset.c");
  counter->Add(9);
  registry.ResetAll();
  EXPECT_EQ(counter->Value(), 0u);
  counter->Add(2);  // pointer still valid
  EXPECT_EQ(registry.Snapshot().CounterValue("test.reset.c"), 2u);
}

TEST(MetricsRegistryTest, KindCollisionDies) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.collision.name");
  EXPECT_DEATH(registry.GetGauge("test.collision.name"), "kind");
}

TEST(MetricsRegistryTest, LatencyKindCollisionDies) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetLatency("test.collision.latency");
  EXPECT_DEATH(registry.GetHistogram("test.collision.latency"), "kind");
}

TEST(MetricsRegistryTest, LatencySnapshotCarriesQuantiles) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  LatencyHistogram* latency = registry.GetLatency("test.lat.snapshot");
  EXPECT_EQ(latency, registry.GetLatency("test.lat.snapshot"));
  for (int i = 1; i <= 100; ++i) latency->Observe(static_cast<double>(i));
  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricSample* sample = snapshot.Find("test.lat.snapshot");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricSample::Kind::kLatency);
  EXPECT_EQ(sample->count, 100u);
  EXPECT_GT(sample->p50, 0.0);
  EXPECT_GE(sample->p99, sample->p50);
  EXPECT_GE(sample->p999, sample->p99);
  EXPECT_DOUBLE_EQ(sample->max, 100.0);
}

TEST(MetricsRegistryTest, ExposeTextIsParsableAndTyped) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.expose.c")->Add(4);
  registry.GetGauge("test.expose.g")->Set(2.5);
  registry.GetLatency("test.lat.expose")->Observe(10.0);
  std::ostringstream out;
  registry.ExposeText(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE test.expose.c counter\ntest.expose.c 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test.expose.g gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test.lat.expose summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("test.lat.expose{quantile=\"0.5\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("test.lat.expose_count 1\n"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonDumpIsValidJson) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.json.c\"quoted\"")->Add(3);
  registry.GetHistogram("test.json.h")->Observe(1.5);
  std::ostringstream out;
  registry.WriteJson(out);
  std::string error;
  const auto doc = JsonValue::Parse(out.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* quoted = counters->Find("test.json.c\"quoted\"");
  ASSERT_NE(quoted, nullptr);
  EXPECT_DOUBLE_EQ(quoted->AsNumber(), 3.0);
  const JsonValue* histograms = doc->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* h = histograms->Find("test.json.h");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->Find("count")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(h->Find("mean")->AsNumber(), 1.5);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesDoNotRace) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.threads.c");
  counter->Reset();
  Histogram* histogram = registry.GetHistogram("test.threads.h");
  histogram->Reset();
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  // Concurrent updaters via the library's own pool (raw standard-library
  // threads are banned outside util/concurrency; tools/lint.sh rule 6).
  ParallelForEach(kThreads, ParallelOptions{.threads = kThreads},
                  [&](size_t) {
                    for (int i = 0; i < kIters; ++i) {
                      counter->Add(1);
                      histogram->Observe(static_cast<double>(i % 7 + 1));
                    }
                  });
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * static_cast<uint64_t>(kIters));
  EXPECT_EQ(histogram->Count(),
            static_cast<uint64_t>(kThreads) * static_cast<uint64_t>(kIters));
  EXPECT_DOUBLE_EQ(histogram->Min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram->Max(), 7.0);
}

// The macro-behavior tests only apply when the macros are compiled in;
// obs_compile_out_test covers the opposite configuration.
#if MC_OBS_COMPILED

TEST(ObsEnabledTest, MacrosRespectRuntimeSwitch) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  SetEnabled(false);
  MC_COUNTER("test.enabled.c", 1);
  EXPECT_EQ(registry.Snapshot().CounterValue("test.enabled.c"), 0u);
  SetEnabled(true);
  MC_COUNTER("test.enabled.c", 1);
  MC_COUNTER("test.enabled.c", 2);
  EXPECT_EQ(registry.Snapshot().CounterValue("test.enabled.c"), 3u);
  SetEnabled(false);
  MC_COUNTER("test.enabled.c", 10);
  EXPECT_EQ(registry.Snapshot().CounterValue("test.enabled.c"), 3u);
}

TEST(ObsEnabledTest, McObsBlockGated) {
  int ran = 0;
  SetEnabled(false);
  MC_OBS(++ran);
  EXPECT_EQ(ran, 0);
  SetEnabled(true);
  MC_OBS(++ran);
  EXPECT_EQ(ran, 1);
  SetEnabled(false);
}

#endif  // MC_OBS_COMPILED

TEST(BuildMetadataTest, NonEmpty) {
  EXPECT_FALSE(BuildGitSha().empty());
  EXPECT_FALSE(BuildType().empty());
}

}  // namespace
}  // namespace obs
}  // namespace monoclass
