// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the dominance DAG builder: edge semantics, the duplicate-point
// index tie-break, acyclicity, and transitive closure.

#include "core/dominance.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace monoclass {
namespace {

bool HasEdge(const DagAdjacency& dag, size_t u, size_t v) {
  const auto& out = dag[u];
  return std::find(out.begin(), out.end(), static_cast<int>(v)) != out.end();
}

TEST(DominanceDagTest, SimpleChain) {
  const PointSet points({Point{0, 0}, Point{1, 1}, Point{2, 2}});
  const DagAdjacency dag = BuildDominanceDag(points);
  EXPECT_TRUE(HasEdge(dag, 0, 1));
  EXPECT_TRUE(HasEdge(dag, 1, 2));
  EXPECT_TRUE(HasEdge(dag, 0, 2));  // transitively closed
  EXPECT_FALSE(HasEdge(dag, 1, 0));
  EXPECT_FALSE(HasEdge(dag, 2, 0));
}

TEST(DominanceDagTest, IncomparablePointsHaveNoEdges) {
  const PointSet points({Point{0, 1}, Point{1, 0}});
  const DagAdjacency dag = BuildDominanceDag(points);
  EXPECT_TRUE(dag[0].empty());
  EXPECT_TRUE(dag[1].empty());
}

TEST(DominanceDagTest, DuplicatePointsOrderedByIndex) {
  const PointSet points({Point{1, 1}, Point{1, 1}, Point{1, 1}});
  const DagAdjacency dag = BuildDominanceDag(points);
  EXPECT_TRUE(HasEdge(dag, 0, 1));
  EXPECT_TRUE(HasEdge(dag, 0, 2));
  EXPECT_TRUE(HasEdge(dag, 1, 2));
  EXPECT_FALSE(HasEdge(dag, 1, 0));
  EXPECT_FALSE(HasEdge(dag, 2, 0));
  EXPECT_FALSE(HasEdge(dag, 2, 1));
}

TEST(DominanceDagTest, IsAcyclic) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    // Include duplicates deliberately: draw coordinates from a tiny grid.
    PointSet points;
    const size_t n = 2 + rng.UniformInt(20);
    for (size_t i = 0; i < n; ++i) {
      points.Add(Point{static_cast<double>(rng.UniformInt(3)),
                       static_cast<double>(rng.UniformInt(3))});
    }
    const DagAdjacency dag = BuildDominanceDag(points);
    // Kahn topological sort must consume every vertex.
    std::vector<int> indegree(n, 0);
    for (const auto& out : dag) {
      for (const int v : out) ++indegree[static_cast<size_t>(v)];
    }
    std::vector<size_t> queue;
    for (size_t v = 0; v < n; ++v) {
      if (indegree[v] == 0) queue.push_back(v);
    }
    size_t consumed = 0;
    while (!queue.empty()) {
      const size_t u = queue.back();
      queue.pop_back();
      ++consumed;
      for (const int v : dag[u]) {
        if (--indegree[static_cast<size_t>(v)] == 0) {
          queue.push_back(static_cast<size_t>(v));
        }
      }
    }
    EXPECT_EQ(consumed, n) << "cycle detected, trial " << trial;
  }
}

TEST(DominanceDagTest, IsTransitivelyClosed) {
  Rng rng(37);
  for (int trial = 0; trial < 20; ++trial) {
    PointSet points;
    const size_t n = 2 + rng.UniformInt(15);
    for (size_t i = 0; i < n; ++i) {
      points.Add(Point{static_cast<double>(rng.UniformInt(4)),
                       static_cast<double>(rng.UniformInt(4))});
    }
    const DagAdjacency dag = BuildDominanceDag(points);
    for (size_t u = 0; u < n; ++u) {
      for (const int v : dag[u]) {
        for (const int w : dag[static_cast<size_t>(v)]) {
          EXPECT_TRUE(HasEdge(dag, u, static_cast<size_t>(w)))
              << u << " -> " << v << " -> " << w << ", trial " << trial;
        }
      }
    }
  }
}

TEST(DominanceSucceedsTest, MatchesDefinition) {
  const PointSet points({Point{0, 0}, Point{1, 1}, Point{0, 0}, Point{0, 2}});
  EXPECT_TRUE(DominanceSucceeds(points, 1, 0));   // strict dominance
  EXPECT_FALSE(DominanceSucceeds(points, 0, 1));
  EXPECT_TRUE(DominanceSucceeds(points, 2, 0));   // equal, ties to index
  EXPECT_FALSE(DominanceSucceeds(points, 0, 2));
  EXPECT_FALSE(DominanceSucceeds(points, 3, 1));  // incomparable
}

}  // namespace
}  // namespace monoclass
