// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Death tests for util/check.h: MC_CHECK aborts with file/line and the
// streamed context, the comparison forms print both operands, and
// MC_DCHECK's NDEBUG expansion does not evaluate side effects (the
// `true || (cond)` path). The suite compiles in both debug and NDEBUG
// configurations and asserts the behavior of whichever is active, so the
// sanitizer presets (RelWithDebInfo => NDEBUG) and a plain Debug build
// both get real coverage.

#include "util/check.h"

#include <gtest/gtest.h>

namespace monoclass {
namespace {

TEST(McCheckDeathTest, PassingCheckIsSilent) {
  MC_CHECK(1 + 1 == 2) << "never printed";
  MC_CHECK_EQ(4, 4);
  MC_CHECK_NE(4, 5);
  MC_CHECK_LT(4, 5);
  MC_CHECK_LE(5, 5);
  MC_CHECK_GT(5, 4);
  MC_CHECK_GE(5, 5);
  SUCCEED();
}

TEST(McCheckDeathTest, AbortsWithFileLineAndStreamedContext) {
  const int x = 3;
  EXPECT_DEATH(
      MC_CHECK(x == 4) << "x came from" << 7,
      "MC_CHECK failed at .*check_death_test\\.cc:[0-9]+: x == 4.*"
      "x came from.*7");
}

TEST(McCheckDeathTest, CheckEqPrintsBothOperands) {
  EXPECT_DEATH(MC_CHECK_EQ(2 + 2, 5), "2 \\+ 2 == 5.*\\(.*4.*vs.*5.*\\)");
}

TEST(McCheckDeathTest, CheckLePrintsBothOperands) {
  const double weight = 2.5;
  EXPECT_DEATH(MC_CHECK_LE(weight, 1.0),
               "weight <= 1\\.0.*\\(.*2\\.5.*vs.*1.*\\)");
}

TEST(McCheckDeathTest, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  MC_CHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 1);
}

#ifdef NDEBUG

TEST(McDcheckNdebugTest, FalseConditionDoesNotAbort) {
  MC_DCHECK(false) << "never reached in NDEBUG";
  MC_DCHECK_EQ(1, 2);
  SUCCEED();
}

TEST(McDcheckNdebugTest, SideEffectsNotEvaluated) {
  int evaluations = 0;
  const auto bump = [&evaluations] {
    ++evaluations;
    return true;
  };
  MC_DCHECK(bump());
  MC_DCHECK_EQ((bump(), 1), 1);
  EXPECT_EQ(evaluations, 0) << "NDEBUG MC_DCHECK must not run side effects";
}

#else  // !NDEBUG

TEST(McDcheckDebugTest, FalseConditionAborts) {
  EXPECT_DEATH(MC_DCHECK(false) << "debug context", "failed at .*: false");
}

TEST(McDcheckDebugTest, SideEffectsEvaluated) {
  int evaluations = 0;
  const auto bump = [&evaluations] {
    ++evaluations;
    return true;
  };
  MC_DCHECK(bump());
  EXPECT_EQ(evaluations, 1);
}

#endif  // NDEBUG

}  // namespace
}  // namespace monoclass
