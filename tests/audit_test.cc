// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the invariant-audit layer itself: each verifier must accept
// solver output (positive cases) and pinpoint hand-planted violations of
// its lemma with a diagnostic naming the witnesses (negative cases).

#include "core/invariant_audit.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "active/one_d.h"
#include "active/sample_audit.h"
#include "core/chain_decomposition.h"
#include "core/classifier.h"
#include "core/dataset.h"
#include "graph/flow_audit.h"
#include "graph/max_flow.h"
#include "test_util.h"
#include "util/audit.h"
#include "util/random.h"

namespace monoclass {
namespace {

// Plain-gtest substring matcher (the suite links gtest, not gmock).
#define EXPECT_FAILURE_CONTAINS(audit, fragment)                       \
  EXPECT_NE((audit).failure.find(fragment), std::string::npos)         \
      << "diagnostic was: " << (audit).failure

PointSet GridPoints() {
  // 2D: (0,0) < (1,1) < (2,2); (0,2) and (2,0) incomparable to the
  // diagonal's interior.
  return PointSet({{0, 0}, {1, 1}, {2, 2}, {0, 2}, {2, 0}});
}

// Index of the longest chain (the diagonal for GridPoints; the tests
// below must not depend on the path cover's chain ordering).
size_t LongestChain(const ChainDecomposition& decomposition) {
  size_t best = 0;
  for (size_t c = 1; c < decomposition.NumChains(); ++c) {
    if (decomposition.chains[c].size() >
        decomposition.chains[best].size()) {
      best = c;
    }
  }
  return best;
}

// --- AuditChainDecomposition -------------------------------------------

TEST(AuditChainDecompositionTest, AcceptsMinimumDecomposition) {
  const PointSet points = GridPoints();
  const ChainDecomposition decomposition = MinimumChainDecomposition(points);
  const AuditResult audit =
      AuditChainDecomposition(points, decomposition, /*expect_minimum=*/true);
  EXPECT_TRUE(audit.ok) << audit.failure;
}

TEST(AuditChainDecompositionTest, AcceptsGreedyWithoutMinimality) {
  const PointSet points = GridPoints();
  const ChainDecomposition decomposition = GreedyChainDecomposition(points);
  const AuditResult audit =
      AuditChainDecomposition(points, decomposition, /*expect_minimum=*/false);
  EXPECT_TRUE(audit.ok) << audit.failure;
}

TEST(AuditChainDecompositionTest, RejectsDroppedIndex) {
  const PointSet points = GridPoints();
  ChainDecomposition decomposition = MinimumChainDecomposition(points);
  decomposition.chains[LongestChain(decomposition)].pop_back();
  const AuditResult audit =
      AuditChainDecomposition(points, decomposition, /*expect_minimum=*/false);
  ASSERT_FALSE(audit.ok);
  EXPECT_FAILURE_CONTAINS(audit, "not a partition");
}

TEST(AuditChainDecompositionTest, RejectsDuplicatedIndex) {
  const PointSet points = GridPoints();
  ChainDecomposition decomposition = MinimumChainDecomposition(points);
  decomposition.chains.push_back({decomposition.chains[0][0]});
  const AuditResult audit =
      AuditChainDecomposition(points, decomposition, /*expect_minimum=*/false);
  ASSERT_FALSE(audit.ok);
  EXPECT_FAILURE_CONTAINS(audit, "appears in chains");
}

TEST(AuditChainDecompositionTest, RejectsBrokenChainOrder) {
  // (0,2) never dominates (1,1): gluing them into one chain must fail.
  const PointSet points = GridPoints();
  ChainDecomposition decomposition;
  decomposition.chains = {{0, 1, 3}, {2}, {4}};
  const AuditResult audit =
      AuditChainDecomposition(points, decomposition, /*expect_minimum=*/false);
  ASSERT_FALSE(audit.ok);
  EXPECT_FAILURE_CONTAINS(audit, "breaks dominance order");
}

TEST(AuditChainDecompositionTest, RejectsEmptyChain) {
  const PointSet points = GridPoints();
  ChainDecomposition decomposition = MinimumChainDecomposition(points);
  decomposition.chains.emplace_back();
  const AuditResult audit =
      AuditChainDecomposition(points, decomposition, /*expect_minimum=*/false);
  ASSERT_FALSE(audit.ok);
  EXPECT_FAILURE_CONTAINS(audit, "empty");
}

TEST(AuditChainDecompositionTest, RejectsNonMinimalAsMinimum) {
  // Splitting one chain into two singletons keeps a valid partition but
  // breaks the Dilworth certificate.
  const PointSet points = GridPoints();
  ChainDecomposition decomposition = MinimumChainDecomposition(points);
  const size_t longest = LongestChain(decomposition);
  ASSERT_GT(decomposition.chains[longest].size(), 1u);
  std::vector<size_t> tail = {decomposition.chains[longest].back()};
  decomposition.chains[longest].pop_back();
  decomposition.chains.push_back(std::move(tail));
  EXPECT_TRUE(AuditChainDecomposition(points, decomposition,
                                      /*expect_minimum=*/false)
                  .ok);
  const AuditResult audit =
      AuditChainDecomposition(points, decomposition, /*expect_minimum=*/true);
  ASSERT_FALSE(audit.ok);
  EXPECT_FAILURE_CONTAINS(audit, "Dilworth");
}

// --- AuditMonotone ------------------------------------------------------

TEST(AuditMonotoneTest, AcceptsThresholdClassifiers) {
  const PointSet points = GridPoints();
  EXPECT_TRUE(AuditMonotone(MonotoneClassifier::AlwaysZero(2), points).ok);
  EXPECT_TRUE(AuditMonotone(MonotoneClassifier::AlwaysOne(2), points).ok);
  const MonotoneClassifier h =
      MonotoneClassifier::FromGenerators({{1, 1}}, 2);
  EXPECT_TRUE(AuditMonotone(h, points).ok);
}

TEST(AuditMonotoneTest, RejectsDimensionMismatch) {
  const AuditResult audit =
      AuditMonotone(MonotoneClassifier::AlwaysZero(3), GridPoints());
  ASSERT_FALSE(audit.ok);
  EXPECT_FAILURE_CONTAINS(audit, "dimension");
}

TEST(AuditMonotoneTest, RandomClassifiersAlwaysAudit) {
  // The representation is monotone by construction, so any generator set
  // must audit clean on any point set -- this is the cheap direction of
  // Lemma 16, exercised across random inputs.
  Rng rng(0x9a9a);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t d = 1 + rng.UniformInt(3);
    const size_t num_generators = 1 + rng.UniformInt(4);
    std::vector<Point> generators;
    for (size_t g = 0; g < num_generators; ++g) {
      std::vector<double> coords(d);
      for (auto& c : coords) c = rng.UniformDouble();
      generators.emplace_back(std::move(coords));
    }
    const MonotoneClassifier h =
        MonotoneClassifier::FromGenerators(std::move(generators), d);
    PointSet points;
    for (size_t i = 0; i < 30; ++i) {
      std::vector<double> coords(d);
      for (auto& c : coords) c = rng.UniformDouble();
      points.Add(Point(std::move(coords)));
    }
    const AuditResult audit = AuditMonotone(h, points);
    EXPECT_TRUE(audit.ok) << audit.failure;
  }
}

// --- AuditFlowConservation / AuditMinCut --------------------------------

FlowNetwork SolvedDiamond(double* flow) {
  // 0 -> {1,2} -> 3 diamond with bottleneck 5.
  FlowNetwork network(4);
  network.AddEdge(0, 1, 3.0);
  network.AddEdge(1, 3, 3.0);
  network.AddEdge(0, 2, 5.0);
  network.AddEdge(2, 3, 2.0);
  *flow = CreateMaxFlowSolver(MaxFlowAlgorithm::kDinic)->Solve(network, 0, 3);
  return network;
}

TEST(AuditMinCutTest, AcceptsSolvedNetwork) {
  double flow = 0.0;
  const FlowNetwork network = SolvedDiamond(&flow);
  EXPECT_EQ(flow, 5.0);
  const AuditResult audit = AuditMinCut(network, 0, 3, flow);
  EXPECT_TRUE(audit.ok) << audit.failure;
}

TEST(AuditMinCutTest, RejectsWrongFlowValue) {
  double flow = 0.0;
  const FlowNetwork network = SolvedDiamond(&flow);
  const AuditResult audit = AuditMinCut(network, 0, 3, flow + 1.0);
  ASSERT_FALSE(audit.ok);
  EXPECT_FAILURE_CONTAINS(audit, "conservation");
}

TEST(AuditMinCutTest, RejectsUnsolvedNetwork) {
  FlowNetwork network(3);
  network.AddEdge(0, 1, 2.0);
  network.AddEdge(1, 2, 2.0);
  // No solve: the zero flow is conserved but not maximum.
  const AuditResult audit = AuditMinCut(network, 0, 2, 0.0);
  ASSERT_FALSE(audit.ok);
  EXPECT_FAILURE_CONTAINS(audit, "not maximum");
}

TEST(AuditMinCutTest, RejectsInfiniteCutEdge) {
  // A single saturated edge above the infinity threshold: the minimum cut
  // necessarily contains it, which Lemma 18 forbids in solver networks.
  FlowNetwork network(2);
  network.AddEdge(0, 1, 100.0);
  const double flow =
      CreateMaxFlowSolver(MaxFlowAlgorithm::kDinic)->Solve(network, 0, 1);
  FlowAuditOptions options;
  options.infinity_threshold = 50.0;
  const AuditResult audit = AuditMinCut(network, 0, 1, flow, options);
  ASSERT_FALSE(audit.ok);
  EXPECT_FAILURE_CONTAINS(audit, "Lemma 18");
}

TEST(AuditFlowConservationTest, RejectsOutOfRangeTerminals) {
  const FlowNetwork network(2);
  EXPECT_FALSE(AuditFlowConservation(network, 0, 7, 0.0).ok);
}

// --- AuditWeightedSample ------------------------------------------------

std::vector<WeightedSampleEntry> CoveringSigma() {
  // A 4-point view covered by one weight-1 entry and two weight-1.5
  // entries: total weight 4 = |view|.
  return {
      {10, 0.0, 0, 1.0},
      {11, 1.0, 0, 1.5},
      {13, 3.0, 1, 1.5},
  };
}

const std::vector<size_t> kViewIndices = {10, 11, 12, 13};
const std::vector<double> kViewCoordinates = {0.0, 1.0, 2.0, 3.0};

TEST(AuditWeightedSampleTest, AcceptsCoveringSample) {
  const AuditResult audit =
      AuditWeightedSample(CoveringSigma(), kViewIndices, kViewCoordinates);
  EXPECT_TRUE(audit.ok) << audit.failure;
}

TEST(AuditWeightedSampleTest, RejectsWeightDrift) {
  auto sigma = CoveringSigma();
  sigma[1].weight += 0.25;
  const AuditResult audit =
      AuditWeightedSample(sigma, kViewIndices, kViewCoordinates);
  ASSERT_FALSE(audit.ok);
  EXPECT_FAILURE_CONTAINS(audit, "Lemma 13");
}

TEST(AuditWeightedSampleTest, RejectsSubUnitWeight) {
  auto sigma = CoveringSigma();
  sigma[0].weight = 0.5;
  const AuditResult audit =
      AuditWeightedSample(sigma, kViewIndices, kViewCoordinates);
  ASSERT_FALSE(audit.ok);
  EXPECT_FAILURE_CONTAINS(audit, "weight");
}

TEST(AuditWeightedSampleTest, RejectsForeignPoint) {
  auto sigma = CoveringSigma();
  sigma[0].point_index = 99;
  const AuditResult audit =
      AuditWeightedSample(sigma, kViewIndices, kViewCoordinates);
  ASSERT_FALSE(audit.ok);
  EXPECT_FAILURE_CONTAINS(audit, "not part of the 1D view");
}

TEST(AuditWeightedSampleTest, RejectsCoordinateMismatch) {
  auto sigma = CoveringSigma();
  sigma[2].coordinate = 2.0;
  const AuditResult audit =
      AuditWeightedSample(sigma, kViewIndices, kViewCoordinates);
  ASSERT_FALSE(audit.ok);
  EXPECT_FAILURE_CONTAINS(audit, "the view assigns");
}

TEST(AuditWeightedSampleTest, AggregateOverloadChecksTotalWeight) {
  WeightedPointSet sigma;
  sigma.Add(Point({0.0}), 0, 2.0);
  sigma.Add(Point({1.0}), 1, 3.0);
  EXPECT_TRUE(AuditWeightedSample(sigma, 5.0).ok);
  const AuditResult audit = AuditWeightedSample(sigma, 6.0);
  ASSERT_FALSE(audit.ok);
  EXPECT_FAILURE_CONTAINS(audit, "Lemma 13");
}

// --- MC_AUDIT macro -----------------------------------------------------

TEST(McAuditMacroTest, PassingAuditIsSilent) {
  MC_AUDIT(AuditResult::Ok());
  SUCCEED();
}

#if MC_AUDIT_ENABLED
TEST(McAuditMacroTest, FailingAuditAbortsWithDiagnostic) {
  EXPECT_DEATH(MC_AUDIT(AuditResult::Fail("planted failure")),
               "MC_AUDIT failed at .*audit_test\\.cc.*planted failure");
}
#else
TEST(McAuditMacroTest, DisabledAuditDoesNotEvaluate) {
  int evaluations = 0;
  // [[maybe_unused]]: when auditing is compiled out MC_AUDIT discards its
  // argument unevaluated, which is exactly what this test demonstrates.
  [[maybe_unused]] const auto probe = [&evaluations] {
    ++evaluations;
    return AuditResult::Fail("never seen");
  };
  MC_AUDIT(probe());
  EXPECT_EQ(evaluations, 0);
}
#endif

}  // namespace
}  // namespace monoclass
