// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the exponential reference solver itself (it guards everything
// else, so it gets its own hand-verifiable cases).

#include "passive/brute_force.h"

#include <gtest/gtest.h>

namespace monoclass {
namespace {

TEST(BruteForceTest, SinglePoint) {
  WeightedPointSet set;
  set.Add(Point{1}, 1, 2.5);
  const auto result = SolvePassiveBruteForce(set);
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 0.0);
  // Two monotone assignments on one point: {0} and {1}.
  EXPECT_EQ(result.num_monotone_assignments, 2u);
}

TEST(BruteForceTest, ChainCountsMonotoneAssignments) {
  // On a 3-chain the monotone assignments are the 4 prefix splits.
  LabeledPointSet set;
  set.Add(Point{1}, 0);
  set.Add(Point{2}, 0);
  set.Add(Point{3}, 1);
  const auto result =
      SolvePassiveBruteForce(WeightedPointSet::UnitWeights(set));
  EXPECT_EQ(result.num_monotone_assignments, 4u);
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 0.0);
}

TEST(BruteForceTest, AntichainHasAllAssignments) {
  LabeledPointSet set;
  set.Add(Point{0, 2}, 0);
  set.Add(Point{1, 1}, 1);
  set.Add(Point{2, 0}, 0);
  const auto result =
      SolvePassiveBruteForce(WeightedPointSet::UnitWeights(set));
  EXPECT_EQ(result.num_monotone_assignments, 8u);  // 2^3, no constraints
  EXPECT_DOUBLE_EQ(result.optimal_weighted_error, 0.0);
}

TEST(BruteForceTest, ForcedError) {
  WeightedPointSet set;
  set.Add(Point{0, 0}, 1, 3.0);
  set.Add(Point{1, 1}, 0, 4.0);
  EXPECT_DOUBLE_EQ(SolvePassiveBruteForce(set).optimal_weighted_error, 3.0);
}

TEST(BruteForceTest, UnweightedWrapperRounds) {
  LabeledPointSet set;
  set.Add(Point{0}, 1);
  set.Add(Point{1}, 0);
  EXPECT_EQ(OptimalErrorBruteForce(set), 1u);
}

TEST(BruteForceTest, RejectsOversizedInput) {
  WeightedPointSet set;
  for (size_t i = 0; i <= kBruteForceMaxPoints; ++i) {
    set.Add(Point{static_cast<double>(i)}, 0, 1.0);
  }
  EXPECT_DEATH(SolvePassiveBruteForce(set), "");
}

TEST(BruteForceTest, ClassifierRealizesReportedError) {
  WeightedPointSet set;
  set.Add(Point{0, 0}, 1, 1.0);
  set.Add(Point{0, 1}, 0, 2.0);
  set.Add(Point{1, 0}, 1, 3.0);
  set.Add(Point{1, 1}, 0, 4.0);
  const auto result = SolvePassiveBruteForce(set);
  EXPECT_NEAR(WeightedError(result.classifier, set),
              result.optimal_weighted_error, 1e-12);
}

}  // namespace
}  // namespace monoclass
