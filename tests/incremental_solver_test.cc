// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// The incremental solver's central contract: after every
// Insert/Erase/Relabel delta the repaired solution is bit-identical to a
// cold SolvePassive on the current snapshot -- same assignment, same
// optimal weighted error, same classifier -- across dimensions, thread
// counts (determinism contract) and adversarial delta mixes, with
// AuditIncrementalCut() proving the repaired cut from first principles.

#include "passive/incremental_solver.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/dataset.h"
#include "passive/flow_solver.h"
#include "test_util.h"
#include "util/random.h"

namespace monoclass {
namespace {

// Cold reference on the solver's current snapshot.
PassiveSolveResult ColdSolve(const IncrementalPassiveSolver& solver,
                             PassiveNetworkBuild network =
                                 PassiveNetworkBuild::kAuto) {
  PassiveSolveOptions options;
  options.network = network;
  return SolvePassiveWeighted(solver.Snapshot(), options);
}

void ExpectMatchesCold(IncrementalPassiveSolver& solver,
                       const std::string& context,
                       PassiveNetworkBuild network =
                           PassiveNetworkBuild::kAuto) {
  const PassiveSolveResult cold = ColdSolve(solver, network);
  const PassiveSolveResult& warm = solver.Solve();
  ASSERT_EQ(warm.assignment, cold.assignment) << context;
  EXPECT_EQ(warm.optimal_weighted_error, cold.optimal_weighted_error)
      << context;
  EXPECT_EQ(warm.num_contending, cold.num_contending) << context;
  const PointSet points = solver.Snapshot().points();
  EXPECT_EQ(warm.classifier.ClassifySet(points),
            cold.classifier.ClassifySet(points))
      << context;
}

// A coarse-grid random point: collisions (duplicates, ties) are common,
// which is the adversarial regime for chain splicing and relay retargets.
Point GridPoint(Rng& rng, size_t d) {
  std::vector<double> coords(d);
  for (auto& c : coords) {
    c = static_cast<double>(rng.UniformInt(8)) / 4.0;
  }
  return Point(std::move(coords));
}

TEST(IncrementalSolverTest, RandomDeltaSequencesMatchColdSolve) {
  for (const size_t d : {size_t{1}, size_t{2}, size_t{3}}) {
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      Rng rng(1000 * d + threads);
      WeightedPointSet initial;
      for (int i = 0; i < 24; ++i) {
        initial.Add(GridPoint(rng, d), rng.Bernoulli(0.5) ? 1 : 0,
                    rng.UniformDoubleInRange(0.5, 4.0));
      }
      IncrementalSolveOptions options;
      options.parallel.threads = threads;
      IncrementalPassiveSolver solver(initial, options);
      for (int step = 0; step < 60; ++step) {
        const uint64_t op = rng.UniformInt(10);
        const std::vector<size_t> live = solver.LiveIds();
        if (op < 4 || live.empty()) {
          solver.Insert(GridPoint(rng, d), rng.Bernoulli(0.5) ? 1 : 0,
                        rng.UniformDoubleInRange(0.5, 4.0));
        } else if (op < 7) {
          solver.Erase(live[rng.UniformInt(live.size())]);
        } else {
          solver.Relabel(live[rng.UniformInt(live.size())],
                         rng.Bernoulli(0.5) ? 1 : 0);
        }
        const std::string context = "d=" + std::to_string(d) +
                                    " threads=" + std::to_string(threads) +
                                    " step=" + std::to_string(step);
        ExpectMatchesCold(solver, context);
        if (step % 10 == 9) {
          const AuditResult audit = solver.AuditIncrementalCut();
          EXPECT_TRUE(audit.ok) << context << ": " << audit.failure;
        }
      }
      // No-op relabels (same label) don't count as deltas.
      EXPECT_LE(solver.stats().deltas, 60u);
      EXPECT_GT(solver.stats().deltas, 0u);
    }
  }
}

TEST(IncrementalSolverTest, MatchesColdSparseBuildToo) {
  // The cold reference above mostly routes dense (small n); pin the
  // sparse chain-relay cold build explicitly as a second oracle.
  Rng rng(77);
  WeightedPointSet initial;
  for (int i = 0; i < 30; ++i) {
    initial.Add(GridPoint(rng, 2), rng.Bernoulli(0.5) ? 1 : 0,
                rng.UniformDoubleInRange(0.5, 3.0));
  }
  IncrementalPassiveSolver solver(initial, {});
  for (int step = 0; step < 25; ++step) {
    const std::vector<size_t> live = solver.LiveIds();
    if (step % 3 == 0 || live.empty()) {
      solver.Insert(GridPoint(rng, 2), rng.Bernoulli(0.5) ? 1 : 0);
    } else if (step % 3 == 1) {
      solver.Erase(live[rng.UniformInt(live.size())]);
    } else {
      solver.Relabel(live[rng.UniformInt(live.size())],
                     rng.Bernoulli(0.5) ? 1 : 0);
    }
    ExpectMatchesCold(solver, "step=" + std::to_string(step),
                      PassiveNetworkBuild::kSparseChainRelay);
  }
}

TEST(IncrementalSolverTest, DeterministicAcrossThreadCounts) {
  // The same delta sequence must produce the same assignment at every
  // checkpoint regardless of thread count (the determinism contract:
  // sharded scans merge in shard order).
  std::vector<std::vector<Label>> reference;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    Rng rng(4242);  // same stream for every thread count
    WeightedPointSet initial;
    for (int i = 0; i < 20; ++i) {
      initial.Add(GridPoint(rng, 2), rng.Bernoulli(0.5) ? 1 : 0,
                  rng.UniformDoubleInRange(0.5, 4.0));
    }
    IncrementalSolveOptions options;
    options.parallel.threads = threads;
    IncrementalPassiveSolver solver(initial, options);
    std::vector<std::vector<Label>> checkpoints;
    for (int step = 0; step < 40; ++step) {
      const std::vector<size_t> live = solver.LiveIds();
      const uint64_t op = rng.UniformInt(3);
      if (op == 0 || live.empty()) {
        solver.Insert(GridPoint(rng, 2), rng.Bernoulli(0.5) ? 1 : 0,
                      rng.UniformDoubleInRange(0.5, 4.0));
      } else if (op == 1) {
        solver.Erase(live[rng.UniformInt(live.size())]);
      } else {
        solver.Relabel(live[rng.UniformInt(live.size())],
                       rng.Bernoulli(0.5) ? 1 : 0);
      }
      checkpoints.push_back(solver.Solve().assignment);
    }
    if (reference.empty()) {
      reference = checkpoints;
    } else {
      EXPECT_EQ(checkpoints, reference) << "threads=" << threads;
    }
  }
}

TEST(IncrementalSolverTest, EraseToEmptyAndRegrow) {
  Rng rng(55);
  WeightedPointSet initial;
  for (int i = 0; i < 10; ++i) {
    initial.Add(GridPoint(rng, 2), rng.Bernoulli(0.5) ? 1 : 0, 1.0);
  }
  IncrementalPassiveSolver solver(initial, {});
  while (solver.LiveSize() > 0) {
    const std::vector<size_t> live = solver.LiveIds();
    solver.Erase(live[rng.UniformInt(live.size())]);
    if (solver.LiveSize() > 0) {
      ExpectMatchesCold(solver, "shrinking");
    }
  }
  EXPECT_EQ(solver.Solve().assignment.size(), 0u);
  EXPECT_EQ(solver.Solve().optimal_weighted_error, 0.0);
  EXPECT_TRUE(solver.AuditIncrementalCut().ok);
  for (int i = 0; i < 12; ++i) {
    solver.Insert(GridPoint(rng, 2), rng.Bernoulli(0.5) ? 1 : 0,
                  rng.UniformDoubleInRange(0.5, 2.0));
    ExpectMatchesCold(solver, "regrow step " + std::to_string(i));
  }
  EXPECT_TRUE(solver.AuditIncrementalCut().ok);
}

TEST(IncrementalSolverTest, RelabelOnlyStream) {
  // Label corrections without structural churn: the dominant serving
  // delta. Includes no-op relabels (same label), which must not count as
  // deltas or perturb the network.
  Rng rng(66);
  WeightedPointSet initial;
  for (int i = 0; i < 25; ++i) {
    initial.Add(GridPoint(rng, 2), rng.Bernoulli(0.5) ? 1 : 0,
                rng.UniformDoubleInRange(0.5, 4.0));
  }
  IncrementalPassiveSolver solver(initial, {});
  const uint64_t before = solver.stats().deltas;
  for (int step = 0; step < 50; ++step) {
    const std::vector<size_t> live = solver.LiveIds();
    solver.Relabel(live[rng.UniformInt(live.size())],
                   rng.Bernoulli(0.5) ? 1 : 0);
    ExpectMatchesCold(solver, "relabel step " + std::to_string(step));
  }
  EXPECT_LE(solver.stats().deltas - before, 50u);
  EXPECT_TRUE(solver.AuditIncrementalCut().ok);
}

TEST(IncrementalSolverTest, AggressiveCompactionStaysCorrect) {
  // Force a rebuild after virtually every structural delta: the compacted
  // state must keep matching cold solves (and the conflict counters must
  // survive rebuilds, which the rebuild audits under MONOCLASS_AUDIT).
  Rng rng(88);
  IncrementalSolveOptions options;
  options.compact_dead_edge_ratio = 0.01;
  options.compact_min_dead_edges = 1;
  WeightedPointSet initial;
  for (int i = 0; i < 16; ++i) {
    initial.Add(GridPoint(rng, 2), rng.Bernoulli(0.5) ? 1 : 0, 1.0);
  }
  IncrementalPassiveSolver solver(initial, options);
  for (int step = 0; step < 30; ++step) {
    const std::vector<size_t> live = solver.LiveIds();
    if (step % 2 == 0 || live.empty()) {
      solver.Insert(GridPoint(rng, 2), rng.Bernoulli(0.5) ? 1 : 0);
    } else {
      solver.Erase(live[rng.UniformInt(live.size())]);
    }
    ExpectMatchesCold(solver, "compacting step " + std::to_string(step));
  }
  EXPECT_GT(solver.stats().rebuilds, 0u);
  EXPECT_TRUE(solver.AuditIncrementalCut().ok);
}

TEST(IncrementalSolverTest, InfinityHeadroomGrowsWithHeavyInserts) {
  // Inserting weight far beyond the initial total forces the infinity
  // threshold (Lemma 18) to be re-provisioned via rebuild.
  WeightedPointSet initial;
  initial.Add(Point{0.0, 0.0}, 1, 1.0);
  initial.Add(Point{1.0, 1.0}, 0, 1.0);
  IncrementalPassiveSolver solver(initial, {});
  const uint64_t rebuilds_before = solver.stats().rebuilds;
  solver.Insert(Point{0.5, 0.5}, 1, 1000.0);
  solver.Insert(Point{2.0, 2.0}, 0, 500.0);
  EXPECT_GT(solver.stats().rebuilds, rebuilds_before);
  ExpectMatchesCold(solver, "after heavy inserts");
  EXPECT_TRUE(solver.AuditIncrementalCut().ok);
}

TEST(IncrementalSolverTest, StartsEmptyAndGrows) {
  IncrementalPassiveSolver solver;
  EXPECT_EQ(solver.LiveSize(), 0u);
  EXPECT_TRUE(solver.AuditIncrementalCut().ok);
  const size_t a = solver.Insert(Point{1.0, 1.0}, 1, 3.0);
  const size_t b = solver.Insert(Point{1.0, 1.0}, 0, 1.0);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  // Duplicate pair with conflicting labels: the cheaper side loses.
  const PassiveSolveResult& result = solver.Solve();
  EXPECT_EQ(result.optimal_weighted_error, 1.0);
  EXPECT_EQ(result.assignment, (std::vector<Label>{1, 1}));
  ExpectMatchesCold(solver, "duplicate pair");
  solver.Erase(a);
  EXPECT_EQ(solver.Solve().optimal_weighted_error, 0.0);
  EXPECT_FALSE(solver.IsLive(a));
  EXPECT_TRUE(solver.IsLive(b));
  EXPECT_TRUE(solver.AuditIncrementalCut().ok);
}

TEST(IncrementalSolverTest, StatsAndDiagnosticsTrackDeltas) {
  Rng rng(99);
  IncrementalPassiveSolver solver;
  for (int i = 0; i < 15; ++i) {
    solver.Insert(GridPoint(rng, 2), rng.Bernoulli(0.5) ? 1 : 0);
  }
  const size_t flip = solver.Insert(GridPoint(rng, 2), 0);
  const std::vector<size_t> live = solver.LiveIds();
  solver.Erase(live[3]);
  solver.Relabel(flip, 1);
  const IncrementalStats& stats = solver.stats();
  EXPECT_EQ(stats.inserts, 16u);
  EXPECT_EQ(stats.erases, 1u);
  EXPECT_EQ(stats.relabels, 1u);
  EXPECT_EQ(stats.deltas, 18u);
  EXPECT_EQ(solver.NumRelays(),
            solver.Solve().network_relays);
  ExpectMatchesCold(solver, "after stats stream");
}

}  // namespace
}  // namespace monoclass
