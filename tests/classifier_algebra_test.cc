// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for the classifier algebra (Unite / Intersect / EquivalentOn):
// hand cases plus property tests of the lattice laws on random
// classifiers and points.

#include <gtest/gtest.h>

#include "core/classifier.h"
#include "test_util.h"
#include "util/random.h"

namespace monoclass {
namespace {

MonotoneClassifier RandomClassifier(Rng& rng, size_t dimension) {
  std::vector<Point> generators;
  const size_t count = 1 + rng.UniformInt(4);
  for (size_t g = 0; g < count; ++g) {
    std::vector<double> coords(dimension);
    for (auto& c : coords) c = rng.UniformDouble();
    generators.push_back(Point(std::move(coords)));
  }
  return MonotoneClassifier::FromGenerators(std::move(generators),
                                            dimension);
}

TEST(ClassifierAlgebraTest, UniteIsPointwiseOr) {
  const auto a = MonotoneClassifier::FromGenerators({Point{1, 0}}, 2);
  const auto b = MonotoneClassifier::FromGenerators({Point{0, 1}}, 2);
  const auto both = Unite(a, b);
  EXPECT_TRUE(both.Classify(Point{1, 0}));
  EXPECT_TRUE(both.Classify(Point{0, 1}));
  EXPECT_FALSE(both.Classify(Point{0.5, 0.5}));
}

TEST(ClassifierAlgebraTest, IntersectIsPointwiseAnd) {
  const auto a = MonotoneClassifier::FromGenerators({Point{1, 0}}, 2);
  const auto b = MonotoneClassifier::FromGenerators({Point{0, 1}}, 2);
  const auto both = Intersect(a, b);
  EXPECT_FALSE(both.Classify(Point{1, 0}));
  EXPECT_FALSE(both.Classify(Point{0, 1}));
  EXPECT_TRUE(both.Classify(Point{1, 1}));
}

TEST(ClassifierAlgebraTest, IdentityElements) {
  Rng rng(1);
  const auto h = RandomClassifier(rng, 2);
  const auto zero = MonotoneClassifier::AlwaysZero(2);
  const auto one = MonotoneClassifier::AlwaysOne(2);
  PointSet probes;
  for (int i = 0; i < 50; ++i) {
    probes.Add(Point{rng.UniformDouble(), rng.UniformDouble()});
  }
  EXPECT_TRUE(EquivalentOn(Unite(h, zero), h, probes));
  EXPECT_TRUE(EquivalentOn(Intersect(h, one), h, probes));
  EXPECT_TRUE(Unite(h, one).IsAlwaysOne());
  EXPECT_TRUE(Intersect(h, zero).IsAlwaysZero());
}

TEST(ClassifierAlgebraTest, PointwiseSemanticsOnRandomInputs) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t d = 1 + rng.UniformInt(4);
    const auto a = RandomClassifier(rng, d);
    const auto b = RandomClassifier(rng, d);
    const auto united = Unite(a, b);
    const auto intersected = Intersect(a, b);
    for (int check = 0; check < 30; ++check) {
      std::vector<double> coords(d);
      for (auto& c : coords) c = rng.UniformDoubleInRange(-0.5, 1.5);
      const Point x(std::move(coords));
      EXPECT_EQ(united.Classify(x), a.Classify(x) || b.Classify(x));
      EXPECT_EQ(intersected.Classify(x), a.Classify(x) && b.Classify(x));
    }
  }
}

TEST(ClassifierAlgebraTest, CommutativeAndAssociativeOnPoints) {
  Rng rng(11);
  const auto a = RandomClassifier(rng, 3);
  const auto b = RandomClassifier(rng, 3);
  const auto c = RandomClassifier(rng, 3);
  PointSet probes;
  for (int i = 0; i < 80; ++i) {
    probes.Add(Point{rng.UniformDouble(), rng.UniformDouble(),
                     rng.UniformDouble()});
  }
  EXPECT_TRUE(EquivalentOn(Unite(a, b), Unite(b, a), probes));
  EXPECT_TRUE(EquivalentOn(Intersect(a, b), Intersect(b, a), probes));
  EXPECT_TRUE(EquivalentOn(Unite(Unite(a, b), c), Unite(a, Unite(b, c)),
                           probes));
  EXPECT_TRUE(EquivalentOn(Intersect(Intersect(a, b), c),
                           Intersect(a, Intersect(b, c)), probes));
}

TEST(ClassifierAlgebraTest, DistributiveLawOnPoints) {
  Rng rng(13);
  const auto a = RandomClassifier(rng, 2);
  const auto b = RandomClassifier(rng, 2);
  const auto c = RandomClassifier(rng, 2);
  PointSet probes;
  for (int i = 0; i < 80; ++i) {
    probes.Add(Point{rng.UniformDouble(), rng.UniformDouble()});
  }
  EXPECT_TRUE(EquivalentOn(Intersect(a, Unite(b, c)),
                           Unite(Intersect(a, b), Intersect(a, c)), probes));
}

TEST(ClassifierAlgebraTest, ResultGeneratorsAreAntichains) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = RandomClassifier(rng, 2);
    const auto b = RandomClassifier(rng, 2);
    for (const auto& h : {Unite(a, b), Intersect(a, b)}) {
      const auto& gens = h.generators();
      for (size_t i = 0; i < gens.size(); ++i) {
        for (size_t j = 0; j < gens.size(); ++j) {
          if (i != j) {
            EXPECT_FALSE(DominatesEq(gens[i], gens[j]));
          }
        }
      }
    }
  }
}

TEST(ClassifierAlgebraTest, DimensionMismatchAborts) {
  const auto a = MonotoneClassifier::AlwaysZero(2);
  const auto b = MonotoneClassifier::AlwaysZero(3);
  EXPECT_DEATH(Unite(a, b), "");
  EXPECT_DEATH(Intersect(a, b), "");
}

TEST(EquivalentOnTest, DetectsDisagreement) {
  const auto a = MonotoneClassifier::Threshold1D(1.0);
  const auto b = MonotoneClassifier::Threshold1D(2.0);
  const PointSet inside({Point{1.5}});
  const PointSet outside({Point{0.5}, Point{3.0}});
  EXPECT_FALSE(EquivalentOn(a, b, inside));
  EXPECT_TRUE(EquivalentOn(a, b, outside));
  EXPECT_TRUE(EquivalentOn(a, b, PointSet()));
}

}  // namespace
}  // namespace monoclass
