// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Unit and property tests for the four max-flow solvers and the min-cut
// extraction: hand-computed instances, cross-solver agreement, agreement
// with a brute-force minimum cut (max-flow min-cut theorem, Lemma 7), and
// flow-validity audits.

#include "graph/max_flow.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace monoclass {
namespace {

using testing_util::BruteForceMinCut;
using testing_util::FlowInstance;
using testing_util::RandomFlowInstance;

// Audits the capacity and conservation constraints of Section 2 on the
// solved network, and that the net out-flow of the source matches `value`.
void ExpectValidFlow(const FlowNetwork& network, int source, int sink,
                     double value) {
  std::vector<double> net(static_cast<size_t>(network.NumVertices()), 0.0);
  for (int u = 0; u < network.NumVertices(); ++u) {
    for (const auto& edge : network.adjacency(u)) {
      if (edge.capacity <= 0.0) continue;  // reverse twin
      const double flow = FlowNetwork::FlowOn(edge);
      EXPECT_GE(flow, -kFlowEps);
      EXPECT_LE(flow, edge.capacity + kFlowEps);
      net[static_cast<size_t>(u)] += flow;
      net[static_cast<size_t>(edge.to)] -= flow;
    }
  }
  for (int v = 0; v < network.NumVertices(); ++v) {
    if (v == source) {
      EXPECT_NEAR(net[static_cast<size_t>(v)], value, 1e-6);
    } else if (v == sink) {
      EXPECT_NEAR(net[static_cast<size_t>(v)], -value, 1e-6);
    } else {
      EXPECT_NEAR(net[static_cast<size_t>(v)], 0.0, 1e-6);
    }
  }
}

class MaxFlowAlgorithmTest
    : public ::testing::TestWithParam<MaxFlowAlgorithm> {
 protected:
  double Solve(FlowNetwork& network, int source, int sink) {
    return CreateMaxFlowSolver(GetParam())->Solve(network, source, sink);
  }
};

TEST_P(MaxFlowAlgorithmTest, SingleEdge) {
  FlowNetwork network(2);
  network.AddEdge(0, 1, 7.5);
  EXPECT_DOUBLE_EQ(Solve(network, 0, 1), 7.5);
}

TEST_P(MaxFlowAlgorithmTest, TwoEdgePathTakesBottleneck) {
  FlowNetwork network(3);
  network.AddEdge(0, 1, 9.0);
  network.AddEdge(1, 2, 4.0);
  EXPECT_DOUBLE_EQ(Solve(network, 0, 2), 4.0);
}

TEST_P(MaxFlowAlgorithmTest, ParallelPathsAdd) {
  FlowNetwork network(4);
  network.AddEdge(0, 1, 3.0);
  network.AddEdge(1, 3, 3.0);
  network.AddEdge(0, 2, 5.0);
  network.AddEdge(2, 3, 2.0);
  EXPECT_DOUBLE_EQ(Solve(network, 0, 3), 5.0);
}

TEST_P(MaxFlowAlgorithmTest, DisconnectedSinkGivesZero) {
  FlowNetwork network(4);
  network.AddEdge(0, 1, 3.0);
  network.AddEdge(2, 3, 3.0);
  EXPECT_DOUBLE_EQ(Solve(network, 0, 3), 0.0);
}

TEST_P(MaxFlowAlgorithmTest, NoEdgesAtAll) {
  FlowNetwork network(2);
  EXPECT_DOUBLE_EQ(Solve(network, 0, 1), 0.0);
}

TEST_P(MaxFlowAlgorithmTest, ClassicCLRSInstance) {
  // CLRS figure 26.6 instance; max flow 23.
  FlowNetwork network(6);
  network.AddEdge(0, 1, 16);
  network.AddEdge(0, 2, 13);
  network.AddEdge(1, 2, 10);
  network.AddEdge(2, 1, 4);
  network.AddEdge(1, 3, 12);
  network.AddEdge(3, 2, 9);
  network.AddEdge(2, 4, 14);
  network.AddEdge(4, 3, 7);
  network.AddEdge(3, 5, 20);
  network.AddEdge(4, 5, 4);
  EXPECT_DOUBLE_EQ(Solve(network, 0, 5), 23.0);
}

TEST_P(MaxFlowAlgorithmTest, RequiresReverseEdgeReasoning) {
  // The greedy path 0-1-2-3 must partially back off for the optimum 2.
  FlowNetwork network(4);
  network.AddEdge(0, 1, 1);
  network.AddEdge(0, 2, 1);
  network.AddEdge(1, 2, 1);
  network.AddEdge(1, 3, 1);
  network.AddEdge(2, 3, 1);
  EXPECT_DOUBLE_EQ(Solve(network, 0, 3), 2.0);
}

TEST_P(MaxFlowAlgorithmTest, FractionalCapacities) {
  FlowNetwork network(4);
  network.AddEdge(0, 1, 0.25);
  network.AddEdge(0, 2, 0.5);
  network.AddEdge(1, 3, 1.0);
  network.AddEdge(2, 3, 0.125);
  EXPECT_NEAR(Solve(network, 0, 3), 0.375, 1e-12);
}

TEST_P(MaxFlowAlgorithmTest, ZeroCapacityEdgeIgnored) {
  FlowNetwork network(3);
  network.AddEdge(0, 1, 0.0);
  network.AddEdge(1, 2, 5.0);
  EXPECT_DOUBLE_EQ(Solve(network, 0, 2), 0.0);
}

TEST_P(MaxFlowAlgorithmTest, MultiEdgesBetweenSamePair) {
  FlowNetwork network(3);
  network.AddEdge(0, 1, 2.0);
  network.AddEdge(0, 1, 3.0);
  network.AddEdge(1, 2, 4.0);
  EXPECT_DOUBLE_EQ(Solve(network, 0, 2), 4.0);
}

TEST_P(MaxFlowAlgorithmTest, FlowIsValidOnRandomInstances) {
  Rng rng(0xfeedu + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    const FlowInstance instance = RandomFlowInstance(rng, 8, 20);
    FlowNetwork network = instance.Build();
    const double value = Solve(network, instance.source, instance.sink);
    ExpectValidFlow(network, instance.source, instance.sink, value);
  }
}

TEST_P(MaxFlowAlgorithmTest, MatchesBruteForceMinCut) {
  Rng rng(0xabcdu + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 60; ++trial) {
    const FlowInstance instance =
        RandomFlowInstance(rng, 2 + static_cast<int>(rng.UniformInt(8)), 24);
    FlowNetwork network = instance.Build();
    const double flow = Solve(network, instance.source, instance.sink);
    EXPECT_NEAR(flow, BruteForceMinCut(instance), 1e-9)
        << "trial " << trial;
  }
}

TEST_P(MaxFlowAlgorithmTest, MinCutEdgesMatchFlowValue) {
  Rng rng(0x5150u + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 60; ++trial) {
    const FlowInstance instance =
        RandomFlowInstance(rng, 2 + static_cast<int>(rng.UniformInt(9)), 30);
    FlowNetwork network = instance.Build();
    const double flow = Solve(network, instance.source, instance.sink);
    EXPECT_NEAR(MinCutWeight(network, instance.source), flow, 1e-9);
  }
}

TEST_P(MaxFlowAlgorithmTest, CutDisconnectsSourceFromSink) {
  Rng rng(0x1234u + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 30; ++trial) {
    const FlowInstance instance = RandomFlowInstance(rng, 9, 26);
    FlowNetwork network = instance.Build();
    Solve(network, instance.source, instance.sink);
    const std::vector<bool> reachable =
        ResidualReachable(network, instance.source);
    EXPECT_TRUE(reachable[static_cast<size_t>(instance.source)]);
    EXPECT_FALSE(reachable[static_cast<size_t>(instance.sink)])
        << "max flow must saturate every augmenting path";
  }
}

TEST_P(MaxFlowAlgorithmTest, ResetFlowAllowsResolving) {
  FlowNetwork network(3);
  network.AddEdge(0, 1, 2.0);
  network.AddEdge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(Solve(network, 0, 2), 2.0);
  network.ResetFlow();
  EXPECT_DOUBLE_EQ(Solve(network, 0, 2), 2.0);
}

TEST_P(MaxFlowAlgorithmTest, LargeLayeredNetwork) {
  // 3 layers x 30 vertices, unit capacities: max flow = 30.
  constexpr int kLayerSize = 30;
  FlowNetwork network(2 + 3 * kLayerSize);
  const int source = 0;
  const int sink = 1;
  auto vertex = [&](int layer, int i) { return 2 + layer * kLayerSize + i; };
  for (int i = 0; i < kLayerSize; ++i) {
    network.AddEdge(source, vertex(0, i), 1.0);
    network.AddEdge(vertex(2, i), sink, 1.0);
  }
  for (int layer = 0; layer < 2; ++layer) {
    for (int i = 0; i < kLayerSize; ++i) {
      for (int j = 0; j < kLayerSize; j += 3) {
        network.AddEdge(vertex(layer, i), vertex(layer + 1, (i + j) % kLayerSize),
                        1.0);
      }
    }
  }
  EXPECT_DOUBLE_EQ(Solve(network, source, sink),
                   static_cast<double>(kLayerSize));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, MaxFlowAlgorithmTest,
    ::testing::ValuesIn(AllMaxFlowAlgorithms()),
    [](const ::testing::TestParamInfo<MaxFlowAlgorithm>& param_info) {
      std::string name = CreateMaxFlowSolver(param_info.param)->Name();
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Cross-solver stress: all four algorithms must agree on medium-size
// random networks (too big for the brute-force cut, so Dinic serves as
// the reference and the others must match it exactly).
TEST(MaxFlowCrossSolverTest, AllSolversAgreeOnMediumGraphs) {
  Rng rng(0x600d);
  for (int trial = 0; trial < 12; ++trial) {
    const int vertices = 50 + static_cast<int>(rng.UniformInt(150));
    const FlowInstance instance =
        RandomFlowInstance(rng, vertices, vertices * 6, 100.0);
    double reference = -1.0;
    for (const auto algorithm : AllMaxFlowAlgorithms()) {
      FlowNetwork network = instance.Build();
      const double flow = CreateMaxFlowSolver(algorithm)->Solve(
          network, instance.source, instance.sink);
      if (reference < 0) {
        reference = flow;
      } else {
        ASSERT_NEAR(flow, reference, 1e-6)
            << CreateMaxFlowSolver(algorithm)->Name() << " trial " << trial;
      }
      ASSERT_NEAR(MinCutWeight(network, instance.source), flow, 1e-6);
    }
  }
}

TEST(MaxFlowCrossSolverTest, AgreeOnNearlyDisconnectedGraphs) {
  // Sparse graphs where the sink is often unreachable exercise the
  // zero-flow and gap-heuristic paths.
  Rng rng(0xdead);
  for (int trial = 0; trial < 20; ++trial) {
    const FlowInstance instance = RandomFlowInstance(rng, 40, 30, 10.0);
    double reference = -1.0;
    for (const auto algorithm : AllMaxFlowAlgorithms()) {
      FlowNetwork network = instance.Build();
      const double flow = CreateMaxFlowSolver(algorithm)->Solve(
          network, instance.source, instance.sink);
      if (reference < 0) {
        reference = flow;
      } else {
        ASSERT_NEAR(flow, reference, 1e-9) << "trial " << trial;
      }
    }
  }
}

TEST(MaxFlowFactoryTest, AllAlgorithmsEnumerated) {
  EXPECT_EQ(AllMaxFlowAlgorithms().size(), 4u);
}

TEST(MaxFlowFactoryTest, NamesAreDistinct) {
  std::vector<std::string> names;
  for (const auto algorithm : AllMaxFlowAlgorithms()) {
    names.push_back(CreateMaxFlowSolver(algorithm)->Name());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(ResidualReachableTest, ReachesEverythingBeforeSolving) {
  FlowNetwork network(3);
  network.AddEdge(0, 1, 1.0);
  network.AddEdge(1, 2, 1.0);
  const std::vector<bool> reachable = ResidualReachable(network, 0);
  EXPECT_TRUE(reachable[0]);
  EXPECT_TRUE(reachable[1]);
  EXPECT_TRUE(reachable[2]);
}

}  // namespace
}  // namespace monoclass
