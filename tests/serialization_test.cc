// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// Tests for dataset / classifier (de)serialization: round trips
// (including exotic doubles and -infinity generators), format errors,
// comments, and file wrappers.

#include "io/serialization.h"

#include <cstdio>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/json.h"
#include "util/random.h"

namespace monoclass {
namespace {

TEST(LabeledCsvTest, RoundTrip) {
  Rng rng(1);
  const LabeledPointSet original =
      testing_util::RandomLabeledSet(rng, 40, 3);
  std::stringstream stream;
  WriteLabeledCsv(original, stream);
  const auto loaded = ReadLabeledCsv(stream);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  EXPECT_EQ(loaded->labels(), original.labels());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->point(i), original.point(i)) << "point " << i;
  }
}

TEST(LabeledCsvTest, ParsesCommentsAndBlanks) {
  std::stringstream stream("# header\n\n1.5,2.5,1\n  \n0.5,0.5,0\n");
  const auto loaded = ReadLabeledCsv(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->label(0), 1);
  EXPECT_EQ(loaded->label(1), 0);
}

TEST(LabeledCsvTest, RejectsBadLabel) {
  std::stringstream stream("1,2,7\n");
  std::string error;
  EXPECT_FALSE(ReadLabeledCsv(stream, &error).has_value());
  EXPECT_NE(error.find("label"), std::string::npos);
}

TEST(LabeledCsvTest, RejectsBadCoordinate) {
  std::stringstream stream("1,abc,1\n");
  std::string error;
  EXPECT_FALSE(ReadLabeledCsv(stream, &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(LabeledCsvTest, RejectsInconsistentDimension) {
  std::stringstream stream("1,2,1\n1,2,3,0\n");
  std::string error;
  EXPECT_FALSE(ReadLabeledCsv(stream, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(LabeledCsvTest, RejectsTooFewFields) {
  std::stringstream stream("1\n");
  EXPECT_FALSE(ReadLabeledCsv(stream).has_value());
}

TEST(WeightedCsvTest, RoundTrip) {
  Rng rng(3);
  const WeightedPointSet original =
      testing_util::RandomWeightedSet(rng, 30, 2);
  std::stringstream stream;
  WriteWeightedCsv(original, stream);
  const auto loaded = ReadWeightedCsv(stream);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->point(i), original.point(i));
    EXPECT_EQ(loaded->label(i), original.label(i));
    EXPECT_DOUBLE_EQ(loaded->weight(i), original.weight(i));
  }
}

TEST(WeightedCsvTest, RejectsNonPositiveWeight) {
  std::stringstream zero("1,2,1,0\n");
  EXPECT_FALSE(ReadWeightedCsv(zero).has_value());
  std::stringstream negative("1,2,1,-3\n");
  EXPECT_FALSE(ReadWeightedCsv(negative).has_value());
}

TEST(ClassifierSerializationTest, RoundTrip) {
  const auto original = MonotoneClassifier::FromGenerators(
      {Point{0.1234567890123456, 2}, Point{3, 0.5}}, 2);
  std::stringstream stream;
  WriteClassifier(original, stream);
  const auto loaded = ReadClassifier(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->dimension(), 2u);
  ASSERT_EQ(loaded->generators().size(), 2u);
  // Exact round trip (17 significant digits).
  for (size_t g = 0; g < 2; ++g) {
    EXPECT_EQ(loaded->generators()[g], original.generators()[g]);
  }
}

TEST(ClassifierSerializationTest, AlwaysOneRoundTripsMinusInfinity) {
  const auto original = MonotoneClassifier::AlwaysOne(3);
  std::stringstream stream;
  WriteClassifier(original, stream);
  const auto loaded = ReadClassifier(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->IsAlwaysOne());
}

TEST(ClassifierSerializationTest, AlwaysZeroRoundTrips) {
  const auto original = MonotoneClassifier::AlwaysZero(2);
  std::stringstream stream;
  WriteClassifier(original, stream);
  const auto loaded = ReadClassifier(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->IsAlwaysZero());
  EXPECT_EQ(loaded->dimension(), 2u);
}

TEST(ClassifierSerializationTest, RejectsMissingHeader) {
  std::stringstream stream("dimension 2\n");
  std::string error;
  EXPECT_FALSE(ReadClassifier(stream, &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(ClassifierSerializationTest, RejectsWrongGeneratorDimension) {
  std::stringstream stream(
      "monoclass-classifier v1\ndimension 2\ngenerator 1 2 3\n");
  EXPECT_FALSE(ReadClassifier(stream).has_value());
}

TEST(ClassifierSerializationTest, RejectsGarbageLine) {
  std::stringstream stream(
      "monoclass-classifier v1\ndimension 2\nnot-a-generator 1 2\n");
  EXPECT_FALSE(ReadClassifier(stream).has_value());
}

TEST(ClassifierSerializationTest, PredictionsSurviveRoundTrip) {
  Rng rng(9);
  std::vector<Point> generators;
  for (int g = 0; g < 5; ++g) {
    generators.push_back(Point{rng.UniformDouble(), rng.UniformDouble()});
  }
  const auto original =
      MonotoneClassifier::FromGenerators(std::move(generators), 2);
  std::stringstream stream;
  WriteClassifier(original, stream);
  const auto loaded = ReadClassifier(stream);
  ASSERT_TRUE(loaded.has_value());
  for (int check = 0; check < 200; ++check) {
    const Point x{rng.UniformDoubleInRange(-0.2, 1.2),
                  rng.UniformDoubleInRange(-0.2, 1.2)};
    EXPECT_EQ(loaded->Classify(x), original.Classify(x));
  }
}

TEST(FileWrappersTest, RoundTripThroughDisk) {
  Rng rng(11);
  const LabeledPointSet set = testing_util::RandomLabeledSet(rng, 20, 2);
  const std::string data_path = ::testing::TempDir() + "/monoclass_set.csv";
  ASSERT_TRUE(WriteLabeledCsvFile(set, data_path));
  const auto loaded = ReadLabeledCsvFile(data_path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), set.size());
  std::remove(data_path.c_str());

  const auto h = MonotoneClassifier::FromGenerators({Point{0.5, 0.5}}, 2);
  const std::string model_path = ::testing::TempDir() + "/monoclass_model.txt";
  ASSERT_TRUE(WriteClassifierFile(h, model_path));
  const auto loaded_h = ReadClassifierFile(model_path);
  ASSERT_TRUE(loaded_h.has_value());
  EXPECT_EQ(loaded_h->generators().size(), 1u);
  std::remove(model_path.c_str());
}

TEST(FileWrappersTest, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(
      ReadLabeledCsvFile("/nonexistent/monoclass.csv", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      ReadClassifierFile("/nonexistent/model.txt", &error).has_value());
}

TEST(RunManifestTest, MakeFillsBuildMetadata) {
  const RunManifest manifest =
      MakeRunManifest("exp2", "figure-3", "passive scaling claim");
  EXPECT_EQ(manifest.experiment, "exp2");
  EXPECT_EQ(manifest.artifact, "figure-3");
  EXPECT_EQ(manifest.claim, "passive scaling claim");
  EXPECT_FALSE(manifest.git_sha.empty());
  EXPECT_FALSE(manifest.build_type.empty());
  EXPECT_GE(manifest.threads, 1u);  // the machine's resolved default
}

TEST(RunManifestTest, JsonOutputParsesWithExpectedKeys) {
  RunManifest manifest = MakeRunManifest("exp1", "table-2", "claim text");
  manifest.params.emplace_back("n", "4096");
  manifest.params.emplace_back("eps", "0.1");
  std::stringstream out;
  WriteRunManifestJson(manifest, out);
  std::string error;
  const auto doc = JsonValue::Parse(out.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->Find("experiment")->AsString(), "exp1");
  EXPECT_EQ(doc->Find("artifact")->AsString(), "table-2");
  EXPECT_EQ(doc->Find("claim")->AsString(), "claim text");
  ASSERT_NE(doc->Find("git_sha"), nullptr);
  ASSERT_NE(doc->Find("build_type"), nullptr);
  ASSERT_NE(doc->Find("obs_enabled"), nullptr);
  const JsonValue* threads = doc->Find("threads");
  ASSERT_NE(threads, nullptr);
  EXPECT_TRUE(threads->is_number());
  EXPECT_GE(threads->AsNumber(), 1.0);
  const JsonValue* params = doc->Find("params");
  ASSERT_NE(params, nullptr);
  EXPECT_EQ(params->Find("n")->AsString(), "4096");
  EXPECT_EQ(params->Find("eps")->AsString(), "0.1");
}

}  // namespace
}  // namespace monoclass
