// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.

#include "core/point.h"

#include <gtest/gtest.h>

namespace monoclass {
namespace {

TEST(PointTest, ConstructionAndAccess) {
  const Point p{1.0, 2.5, -3.0};
  EXPECT_EQ(p.dimension(), 3u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 2.5);
  EXPECT_DOUBLE_EQ(p[2], -3.0);
}

TEST(PointTest, Equality) {
  EXPECT_EQ((Point{1, 2}), (Point{1, 2}));
  EXPECT_NE((Point{1, 2}), (Point{1, 3}));
  EXPECT_NE((Point{1, 2}), (Point{2, 1}));
}

TEST(PointTest, ToString) {
  EXPECT_EQ((Point{1, 2}).ToString(), "(1, 2)");
  EXPECT_EQ((Point{-0.5}).ToString(), "(-0.5)");
}

TEST(DominanceTest, ReflexiveOnEqualPoints) {
  const Point p{3, 4};
  EXPECT_TRUE(DominatesEq(p, p));
  EXPECT_FALSE(StrictlyDominates(p, p));
}

TEST(DominanceTest, StrictDominanceInAllCoordinates) {
  EXPECT_TRUE(DominatesEq(Point{2, 3}, Point{1, 2}));
  EXPECT_TRUE(StrictlyDominates(Point{2, 3}, Point{1, 2}));
  EXPECT_FALSE(DominatesEq(Point{1, 2}, Point{2, 3}));
}

TEST(DominanceTest, DominanceWithTiesOnSomeCoordinates) {
  // The paper: p != q implies strict inequality on at least one dimension,
  // and p >= q still holds with ties elsewhere.
  EXPECT_TRUE(StrictlyDominates(Point{2, 2}, Point{2, 1}));
  EXPECT_TRUE(StrictlyDominates(Point{2, 2}, Point{1, 2}));
}

TEST(DominanceTest, IncomparablePoints) {
  EXPECT_TRUE(Incomparable(Point{1, 3}, Point{2, 1}));
  EXPECT_FALSE(Incomparable(Point{1, 1}, Point{2, 2}));
  EXPECT_FALSE(Incomparable(Point{1, 1}, Point{1, 1}));
}

TEST(DominanceTest, OneDimensionIsTotalOrder) {
  EXPECT_TRUE(DominatesEq(Point{5}, Point{3}));
  EXPECT_FALSE(Incomparable(Point{5}, Point{3}));
  EXPECT_FALSE(Incomparable(Point{3}, Point{3}));
}

TEST(DominanceTest, HighDimensional) {
  const Point low{0, 0, 0, 0, 0, 0};
  const Point high{1, 1, 1, 1, 1, 1};
  Point mixed{1, 1, 1, 0, 1, 1};
  EXPECT_TRUE(DominatesEq(high, low));
  EXPECT_TRUE(DominatesEq(high, mixed));
  EXPECT_TRUE(DominatesEq(mixed, low));
  EXPECT_FALSE(DominatesEq(mixed, high));
}

TEST(DominanceTest, NegativeCoordinates) {
  EXPECT_TRUE(DominatesEq(Point{-1, -2}, Point{-3, -4}));
  EXPECT_FALSE(DominatesEq(Point{-3, -4}, Point{-1, -2}));
}

}  // namespace
}  // namespace monoclass
