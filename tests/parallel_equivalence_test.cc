// Copyright 2026 The monoclass Authors
// Licensed under the Apache License, Version 2.0.
//
// The determinism contract of docs/concurrency.md, enforced end to end:
// the parallel hot paths (per-chain active solves in multi_d, the
// contending scan and dominance-edge build in the passive flow solver)
// must produce BIT-IDENTICAL results at every thread count. Each test
// runs the same solve at threads in {1, 2, 8} -- threads = 1 is the
// exact serial path -- and compares every observable output field, not
// just the headline classifier.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "active/multi_d.h"
#include "active/oracle.h"
#include "core/paper_example.h"
#include "data/synthetic.h"
#include "passive/flow_solver.h"
#include "util/concurrency.h"

namespace monoclass {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};

// Full observable-state comparison for an active solve.
void ExpectSameActiveResult(const ActiveSolveResult& serial,
                            const ActiveSolveResult& parallel,
                            const PointSet& points, size_t threads) {
  SCOPED_TRACE(::testing::Message() << "threads=" << threads);
  EXPECT_EQ(serial.probes, parallel.probes);
  EXPECT_EQ(serial.num_chains, parallel.num_chains);
  EXPECT_EQ(serial.total_levels, parallel.total_levels);
  EXPECT_EQ(serial.full_probe_levels, parallel.full_probe_levels);
  EXPECT_EQ(serial.sigma_error, parallel.sigma_error);  // exact, not near
  EXPECT_TRUE(EquivalentOn(serial.classifier, parallel.classifier, points));
  EXPECT_EQ(serial.classifier.generators(), parallel.classifier.generators());
  // Sigma is merged in chain order, so entry order must match too.
  ASSERT_EQ(serial.sigma.size(), parallel.sigma.size());
  for (size_t i = 0; i < serial.sigma.size(); ++i) {
    EXPECT_EQ(serial.sigma.point(i), parallel.sigma.point(i)) << "entry " << i;
    EXPECT_EQ(serial.sigma.label(i), parallel.sigma.label(i)) << "entry " << i;
    EXPECT_EQ(serial.sigma.weight(i), parallel.sigma.weight(i))
        << "entry " << i;
  }
  // Per-chain probe accounting (the budget breakdown) is part of the
  // contract: chain c's cost may not depend on who probed first.
  EXPECT_EQ(serial.probe_budget.measured_probes,
            parallel.probe_budget.measured_probes);
  EXPECT_EQ(serial.probe_budget.per_chain_probes,
            parallel.probe_budget.per_chain_probes);
}

void ExpectSamePassiveResult(const PassiveSolveResult& serial,
                             const PassiveSolveResult& parallel,
                             size_t threads) {
  SCOPED_TRACE(::testing::Message() << "threads=" << threads);
  EXPECT_EQ(serial.optimal_weighted_error, parallel.optimal_weighted_error);
  EXPECT_EQ(serial.assignment, parallel.assignment);
  EXPECT_EQ(serial.num_contending, parallel.num_contending);
  EXPECT_EQ(serial.network_vertices, parallel.network_vertices);
  EXPECT_EQ(serial.network_finite_edges, parallel.network_finite_edges);
  EXPECT_EQ(serial.network_infinite_edges, parallel.network_infinite_edges);
  EXPECT_EQ(serial.flow_value, parallel.flow_value);
  EXPECT_EQ(serial.classifier.generators(), parallel.classifier.generators());
}

TEST(ParallelEquivalenceTest, ActiveMultiDOnPlantedInstance) {
  PlantedOptions options;
  options.num_points = 400;
  options.dimension = 2;
  options.noise_flips = 8;
  options.seed = 7;
  const PlantedInstance instance = GeneratePlanted(options);

  ActiveSolveOptions solve_options;
  solve_options.sampling = ActiveSamplingParams::Practical(1.0, 0.1);
  solve_options.seed = 42;
  solve_options.parallel.threads = 1;
  InMemoryOracle serial_oracle(instance.data);
  const ActiveSolveResult serial =
      SolveActiveMultiD(instance.data.points(), serial_oracle, solve_options);

  for (const size_t threads : kThreadCounts) {
    solve_options.parallel.threads = threads;
    InMemoryOracle oracle(instance.data);
    const ActiveSolveResult parallel =
        SolveActiveMultiD(instance.data.points(), oracle, solve_options);
    ExpectSameActiveResult(serial, parallel, instance.data.points(), threads);
    EXPECT_EQ(serial_oracle.NumProbes(), oracle.NumProbes());
  }
}

TEST(ParallelEquivalenceTest, ActiveMultiDOnChainInstance) {
  ChainInstanceOptions options;
  options.num_chains = 12;
  options.chain_length = 60;
  options.noise_per_chain = 2;
  options.seed = 3;
  const ChainInstance instance = GenerateChainInstance(options);

  ActiveSolveOptions solve_options;
  solve_options.sampling = ActiveSamplingParams::Practical(0.8, 0.1);
  solve_options.seed = 5;
  solve_options.precomputed_chains = instance.chains;
  solve_options.parallel.threads = 1;
  InMemoryOracle serial_oracle(instance.data);
  const ActiveSolveResult serial =
      SolveActiveMultiD(instance.data.points(), serial_oracle, solve_options);

  for (const size_t threads : kThreadCounts) {
    solve_options.parallel.threads = threads;
    InMemoryOracle oracle(instance.data);
    const ActiveSolveResult parallel =
        SolveActiveMultiD(instance.data.points(), oracle, solve_options);
    ExpectSameActiveResult(serial, parallel, instance.data.points(), threads);
  }
}

TEST(ParallelEquivalenceTest, ActiveMultiDOnPaperExample) {
  const LabeledPointSet data = PaperFigure1Points();
  ActiveSolveOptions solve_options;
  solve_options.sampling = ActiveSamplingParams::Practical(0.5, 0.1);
  solve_options.seed = 1;
  solve_options.parallel.threads = 1;
  InMemoryOracle serial_oracle(data);
  const ActiveSolveResult serial =
      SolveActiveMultiD(data.points(), serial_oracle, solve_options);
  EXPECT_EQ(serial.num_chains, 6u);  // the paper's width

  for (const size_t threads : kThreadCounts) {
    solve_options.parallel.threads = threads;
    InMemoryOracle oracle(data);
    const ActiveSolveResult parallel =
        SolveActiveMultiD(data.points(), oracle, solve_options);
    ExpectSameActiveResult(serial, parallel, data.points(), threads);
  }
}

// The noise realization of NoisyOracle is a pure function of (seed,
// point index), so even the lie pattern -- not just the classifier --
// must be identical whichever thread probes a point first.
TEST(ParallelEquivalenceTest, NoisyOracleRealizesSameLiesAtAnyThreadCount) {
  PlantedOptions options;
  options.num_points = 300;
  options.dimension = 2;
  options.seed = 19;
  const PlantedInstance instance = GeneratePlanted(options);

  ActiveSolveOptions solve_options;
  solve_options.sampling = ActiveSamplingParams::Practical(1.0, 0.1);
  solve_options.seed = 23;
  solve_options.parallel.threads = 1;
  NoisyOracle serial_oracle(instance.data, 0.05, /*seed=*/99);
  const ActiveSolveResult serial =
      SolveActiveMultiD(instance.data.points(), serial_oracle, solve_options);

  for (const size_t threads : kThreadCounts) {
    solve_options.parallel.threads = threads;
    NoisyOracle oracle(instance.data, 0.05, /*seed=*/99);
    const ActiveSolveResult parallel =
        SolveActiveMultiD(instance.data.points(), oracle, solve_options);
    ExpectSameActiveResult(serial, parallel, instance.data.points(), threads);
    EXPECT_EQ(serial_oracle.NumLies(), oracle.NumLies())
        << "threads=" << threads;
  }
}

TEST(ParallelEquivalenceTest, PassiveFlowSolverOnPlantedInstance) {
  PlantedOptions options;
  options.num_points = 500;
  options.dimension = 3;
  options.noise_flips = 25;
  options.seed = 13;
  const PlantedInstance instance = GeneratePlanted(options);

  PassiveSolveOptions solve_options;
  solve_options.parallel.threads = 1;
  const PassiveSolveResult serial =
      SolvePassiveUnweighted(instance.data, solve_options);

  for (const size_t threads : kThreadCounts) {
    solve_options.parallel.threads = threads;
    const PassiveSolveResult parallel =
        SolvePassiveUnweighted(instance.data, solve_options);
    ExpectSamePassiveResult(serial, parallel, threads);
  }
}

TEST(ParallelEquivalenceTest, PassiveFlowSolverOnPaperWeightedExample) {
  const WeightedPointSet weighted = PaperFigure1WeightedPoints();
  PassiveSolveOptions solve_options;
  solve_options.parallel.threads = 1;
  const PassiveSolveResult serial =
      SolvePassiveWeighted(weighted, solve_options);
  EXPECT_DOUBLE_EQ(serial.optimal_weighted_error, 104.0);  // Figure 1(b)

  for (const size_t threads : kThreadCounts) {
    solve_options.parallel.threads = threads;
    const PassiveSolveResult parallel =
        SolvePassiveWeighted(weighted, solve_options);
    ExpectSamePassiveResult(serial, parallel, threads);
  }
}

// The no-reduction ablation exercises the parallel dominance build over
// the full point set (a different row partition than the contending
// subset), so cover it too.
TEST(ParallelEquivalenceTest, PassiveFlowSolverWithoutContendingReduction) {
  PlantedOptions options;
  options.num_points = 200;
  options.dimension = 2;
  options.noise_flips = 10;
  options.seed = 29;
  const PlantedInstance instance = GeneratePlanted(options);

  PassiveSolveOptions solve_options;
  solve_options.reduce_to_contending = false;
  solve_options.parallel.threads = 1;
  const PassiveSolveResult serial =
      SolvePassiveUnweighted(instance.data, solve_options);

  for (const size_t threads : kThreadCounts) {
    solve_options.parallel.threads = threads;
    const PassiveSolveResult parallel =
        SolvePassiveUnweighted(instance.data, solve_options);
    ExpectSamePassiveResult(serial, parallel, threads);
  }
}

}  // namespace
}  // namespace monoclass
